//! Comment- and string-aware source scanning (no `syn`, offline).
//!
//! The audits must not fire on the word `unsafe` inside a doc comment or a
//! diagnostic string, and must *find* markers like `// SAFETY:` that live
//! only in comments. So every file is split, line by line, into the code
//! text (comments stripped, string/char-literal *contents* blanked) and the
//! comment text (everything inside `//…`, `/*…*/`, including doc comments).
//! The lexer handles nested block comments, escaped quotes, raw strings
//! (`r"…"`, `r#"…"#`, byte variants) and distinguishes char literals from
//! lifetimes — the constructs that break naive `grep`-based audits.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One source line split into its code and comment constituents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SourceLine {
    /// Code with comments removed and literal contents blanked (the
    /// delimiting quotes are kept so the line still reads as code).
    pub code: String,
    /// Concatenated comment text appearing on this line.
    pub comment: String,
}

/// A scanned file: workspace-relative path plus its line decomposition.
#[derive(Clone, Debug)]
pub struct ScannedFile {
    /// `/`-separated path relative to the scan root.
    pub rel_path: String,
    pub lines: Vec<SourceLine>,
}

#[derive(PartialEq, Eq, Clone, Copy)]
enum State {
    Code,
    LineComment,
    /// Nesting depth of `/* … */`.
    BlockComment(u32),
    Str,
    /// Number of `#`s that close the raw string.
    RawStr(usize),
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Split `src` into per-line code/comment text. Total — never fails; an
/// unterminated literal simply runs to end of file.
pub fn scan_str(src: &str) -> Vec<SourceLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = SourceLine::default();
    let mut st = State::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if st == State::LineComment {
                st = State::Code;
            }
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = State::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = State::Str;
                    i += 1;
                } else if (c == 'r' || c == 'b') && !cur.code.ends_with(is_ident_char) {
                    // Possible raw / byte / raw-byte string prefix.
                    let mut j = i + 1;
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        j += 1;
                    }
                    let hash_start = j;
                    while chars.get(j) == Some(&'#') {
                        j += 1;
                    }
                    let hashes = j - hash_start;
                    let raw = (c == 'r' || j > i + 1) && chars.get(j) == Some(&'"');
                    if raw && (c == 'r' || hashes > 0 || chars.get(i + 1) == Some(&'r')) {
                        cur.code.push('"');
                        st = State::RawStr(hashes);
                        i = j + 1;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        cur.code.push('"');
                        st = State::Str;
                        i += 2;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Char literal vs lifetime. `'\…'` and `'x'` are
                    // literals; anything else (`'a`, `'static`) is a
                    // lifetime and stays code.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Skip the backslash and the escaped character
                        // (covers `'\''`, `'\\'`, `'\n'`, `'\u{…}'`).
                        let mut j = i + 3;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        cur.code.push_str("''");
                        i = j + 1;
                    } else if chars.get(i + 2) == Some(&'\'') {
                        cur.code.push_str("''");
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    st = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                let closes = c == '"' && (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
                if closes {
                    cur.code.push('"');
                    st = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Word-boundary search: `word` occurs in `code` with no identifier
/// character on either side (so `unsafe` does not match `unsafe_code`).
pub fn has_word(code: &str, word: &str) -> bool {
    let bytes = code.as_bytes();
    let mut from = 0;
    while let Some(pos) = code[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1] as char);
        let right_ok = end == bytes.len() || !is_ident_char(bytes[end] as char);
        if left_ok && right_ok {
            return true;
        }
        from = start + 1;
    }
    false
}

/// True if a justification `marker` (e.g. `"SAFETY:"`) appears in the
/// comment text of line `idx` or above it within `window` preceding *code*
/// lines. Pure-comment and blank lines are free — a marker at the top of a
/// multi-line justification block still counts — but crossing more than
/// `window` lines that contain code stops the search, so unrelated comments
/// far above a site never excuse it.
pub fn documented(lines: &[SourceLine], idx: usize, marker: &str, window: usize) -> bool {
    if lines[idx].comment.contains(marker) {
        return true;
    }
    let mut budget = window;
    for line in lines[..idx].iter().rev() {
        if line.comment.contains(marker) {
            return true;
        }
        if !line.code.trim().is_empty() {
            budget -= 1;
            if budget == 0 {
                return false;
            }
        }
    }
    false
}

/// A function body span: `open` is the line of the opening brace, `close`
/// the line of its matching close (0-based, inclusive). Spans nest for
/// nested `fn` items; closures do not open a span (they belong to their
/// enclosing function, which is the right scope for justification rules).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FnSpan {
    pub open: usize,
    pub close: usize,
}

/// Extract every `fn` body span from the code text of `lines`. Purely
/// lexical: the `fn` keyword arms the next `{` (a `;` before it disarms,
/// so trait-method declarations without bodies don't capture the following
/// item's brace).
pub fn fn_spans(lines: &[SourceLine]) -> Vec<FnSpan> {
    let mut spans = Vec::new();
    // Stack of (depth-at-open, open-line) for braces that opened fn bodies.
    let mut fn_stack: Vec<(usize, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut armed = false;
    for (ln, line) in lines.iter().enumerate() {
        let mut word = String::new();
        for c in line.code.chars() {
            if c.is_ascii_alphanumeric() || c == '_' {
                word.push(c);
                continue;
            }
            if word == "fn" {
                armed = true;
            }
            word.clear();
            match c {
                ';' => armed = false,
                '{' => {
                    if armed {
                        fn_stack.push((depth, ln));
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if let Some(&(d, open)) = fn_stack.last() {
                        if d == depth {
                            fn_stack.pop();
                            spans.push(FnSpan { open, close: ln });
                        }
                    }
                }
                _ => {}
            }
        }
        if word == "fn" {
            armed = true;
        }
    }
    spans.sort_by_key(|s| (s.open, s.close));
    spans
}

/// The innermost function span containing line `idx`, if any.
pub fn innermost_fn(spans: &[FnSpan], idx: usize) -> Option<FnSpan> {
    spans
        .iter()
        .filter(|s| s.open <= idx && idx <= s.close)
        .min_by_key(|s| s.close - s.open)
        .copied()
}

/// The justification text attached to a `marker` covering line `idx`, if
/// any: the marker line's comment from the marker onward, plus the comment
/// text of the immediately following code-free comment lines (a multi-line
/// justification block). Same search discipline as [`documented`].
pub fn justification(lines: &[SourceLine], idx: usize, marker: &str, window: usize) -> Option<(usize, String)> {
    let start = marker_line(lines, idx, marker, window)?;
    let mut text = lines[start].comment[lines[start].comment.find(marker)? + marker.len()..].to_string();
    // The continuation block: comment-only lines directly below the marker
    // (the first code line — at latest the site itself — ends it).
    for line in lines.iter().skip(start + 1) {
        if !line.code.trim().is_empty() || line.comment.is_empty() {
            break;
        }
        text.push(' ');
        text.push_str(&line.comment);
    }
    Some((start, text))
}

/// The line where the `marker` covering site `idx` lives (same rules as
/// [`documented`]): `idx` itself, or an earlier line within `window`
/// preceding code lines.
pub fn marker_line(lines: &[SourceLine], idx: usize, marker: &str, window: usize) -> Option<usize> {
    if lines[idx].comment.contains(marker) {
        return Some(idx);
    }
    let mut budget = window;
    for (k, line) in lines[..idx].iter().enumerate().rev() {
        if line.comment.contains(marker) {
            return Some(k);
        }
        if !line.code.trim().is_empty() {
            budget -= 1;
            if budget == 0 {
                return None;
            }
        }
    }
    None
}

/// Path components that mark a file as test/bench/example code, exempt
/// from the production-code-only lints.
pub const TEST_DIRS: &[&str] = &["tests", "benches", "examples"];

/// True for files under a [`TEST_DIRS`] directory component.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.split('/').any(|part| TEST_DIRS.contains(&part))
}

/// Number of leading production-code lines: everything at or below the
/// first `#[cfg(test)]` line is test code (workspace convention keeps the
/// tests module at the end of the file; the heuristic can only under-lint
/// test code, never skip production code).
pub fn production_len(lines: &[SourceLine]) -> usize {
    lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len())
}

/// The identifier immediately preceding byte offset `pos` in `code`, with
/// one trailing `()` call stripped — so for `shared.state.lock()` at the
/// offset of `.lock()` this yields `state`, and for `trace_registry().lock()`
/// it yields `trace_registry`.
pub fn ident_before(code: &str, pos: usize) -> Option<String> {
    let bytes = code.as_bytes();
    let mut end = pos;
    if end >= 2 && &bytes[end - 2..end] == b"()" {
        end -= 2;
    }
    let mut start = end;
    while start > 0 && is_ident_char(bytes[start - 1] as char) {
        start -= 1;
    }
    if start == end || bytes[start].is_ascii_digit() {
        None
    } else {
        Some(code[start..end].to_string())
    }
}

/// The first identifier at or after byte offset `pos` in `code`, skipping
/// whitespace, `&` and the `mut` keyword — used to read the guard argument
/// out of `cv.wait(guard)`.
pub fn ident_after(code: &str, pos: usize) -> Option<String> {
    let mut rest = code.get(pos..)?.trim_start();
    loop {
        if let Some(r) = rest.strip_prefix('&') {
            rest = r.trim_start();
        } else if let Some(r) = rest.strip_prefix("mut ") {
            rest = r.trim_start();
        } else {
            break;
        }
    }
    let end = rest.find(|c: char| !is_ident_char(c)).unwrap_or(rest.len());
    if end == 0 {
        None
    } else {
        Some(rest[..end].to_string())
    }
}

/// Directories never scanned, by path component: build output, the
/// offline vendored crates (they mirror upstream APIs, not our rules) and
/// deliberately-broken analyzer test fixtures.
const SKIP_COMPONENTS: &[&str] = &["target", "vendored", ".git", "fixtures", "repro_results"];

/// Recursively collect every `.rs` file under `root`, skipping
/// [`SKIP_COMPONENTS`], sorted by relative path for deterministic reports.
pub fn workspace_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_COMPONENTS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Scan one file into its line decomposition, with a root-relative path.
pub fn scan_file(root: &Path, path: &Path) -> io::Result<ScannedFile> {
    let src = fs::read_to_string(path)?;
    let rel = path.strip_prefix(root).unwrap_or(path);
    let rel_path = rel
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/");
    Ok(ScannedFile {
        rel_path,
        lines: scan_str(&src),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(src: &str) -> Vec<String> {
        scan_str(src).into_iter().map(|l| l.code).collect()
    }

    #[test]
    fn line_comments_are_separated() {
        let lines = scan_str("let x = 1; // SAFETY: not really code\nlet y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert!(lines[0].comment.contains("SAFETY: not really code"));
        assert_eq!(lines[1].comment, "");
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = scan_str("a /* one /* two */ still */ b\nc /* open\nunsafe here\n*/ d\n");
        assert_eq!(lines[0].code, "a  b");
        assert!(lines[0].comment.contains("one"));
        assert!(lines[0].comment.contains("still"));
        assert_eq!(lines[1].code, "c ");
        assert_eq!(lines[2].code, "");
        assert!(lines[2].comment.contains("unsafe here"));
        assert_eq!(lines[3].code, " d");
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = codes("let m = \"unsafe // not a comment\"; call();\n");
        assert_eq!(lines[0], "let m = \"\"; call();");
        // Escaped quote does not close the string early.
        let lines = codes("let m = \"a\\\"unsafe\"; tail\n");
        assert_eq!(lines[0], "let m = \"\"; tail");
    }

    #[test]
    fn raw_strings_are_blanked() {
        assert_eq!(codes("let p = r\"C:\\unsafe\"; x\n")[0], "let p = \"\"; x");
        assert_eq!(codes("let p = r#\"has \"quote\" unsafe\"#; x\n")[0], "let p = \"\"; x");
        assert_eq!(codes("let p = br#\"bytes unsafe\"#; x\n")[0], "let p = \"\"; x");
        // An identifier ending in `r` followed by a call is untouched.
        assert_eq!(codes("for x in iter() {}\n")[0], "for x in iter() {}");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        assert_eq!(
            codes("let c = 'u'; let l: &'static str;\n")[0],
            "let c = ''; let l: &'static str;"
        );
        assert_eq!(codes("let c = '\\''; rest\n")[0], "let c = ''; rest");
        assert_eq!(codes("fn f<'a>(x: &'a u8) {}\n")[0], "fn f<'a>(x: &'a u8) {}");
    }

    #[test]
    fn word_boundaries() {
        assert!(has_word("unsafe impl Send for X {}", "unsafe"));
        assert!(!has_word("#![forbid(unsafe_code)]", "unsafe"));
        assert!(!has_word("my_unsafe_helper()", "unsafe"));
        assert!(has_word("Ordering::Relaxed", "Relaxed"));
        assert!(!has_word("RelaxedPlus", "Relaxed"));
        assert!(has_word("unsafe", "unsafe"));
    }

    #[test]
    fn documented_window() {
        let lines = scan_str("// SAFETY: fine\nlet a = 0;\nlet b = 0;\nlet c = 0;\nunsafe {}\n");
        assert!(documented(&lines, 1, "SAFETY:", 3));
        assert!(documented(&lines, 3, "SAFETY:", 3));
        assert!(
            !documented(&lines, 4, "SAFETY:", 3),
            "three code lines separate the comment from the site"
        );
    }

    #[test]
    fn documented_skips_comment_and_blank_lines() {
        // A long justification block with the marker on its first line
        // still covers the site: comment/blank lines don't consume the
        // window.
        let block = scan_str("// SAFETY: long argument\n// spanning\n// several\n// lines\n\nunsafe {}\n");
        assert!(documented(&block, 5, "SAFETY:", 3));
        // …and a site after a comment block *plus* too many code lines is
        // still undocumented.
        let far = scan_str("// SAFETY: far\nlet a = 0;\nlet b = 0;\nlet c = 0;\nlet d = 0;\nunsafe {}\n");
        assert!(!documented(&far, 5, "SAFETY:", 3));
    }

    #[test]
    fn unterminated_literal_runs_to_eof() {
        let lines = scan_str("let s = \"open\nunsafe\n");
        assert_eq!(lines.len(), 2);
        assert!(!has_word(&lines[1].code, "unsafe"));
    }
}
