//! Gate tests for the concurrency-protocol passes: each deliberately
//! broken fixture must be caught by its pass with the right `file:line`,
//! and the committed lock-order snapshot must match the live graph.

use analyzer::scan::{scan_str, ScannedFile};
use analyzer::{atomics, condvar, lockorder, Pass};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Scan a fixture file but report it under a pretend path inside the
/// concurrency-pass scope (`crates/{serve,parallel,obs}`).
fn scan_as(fixture: &str, pretend_path: &str) -> ScannedFile {
    let src = std::fs::read_to_string(fixtures_dir().join(fixture)).unwrap();
    ScannedFile {
        rel_path: pretend_path.to_string(),
        lines: scan_str(&src),
    }
}

#[test]
fn lock_cycle_fixture_is_flagged() {
    let f = scan_as("lock_cycle.rs", "crates/serve/src/lib.rs");
    let (findings, graph) = lockorder::run(
        &[f],
        Some(&lockorder::render_snapshot(
            &lockorder::collect(&[scan_as("lock_cycle.rs", "crates/serve/src/lib.rs")]).1,
        )),
        "lock_order.snap",
    );
    // Both AB and BA edges exist, so the graph is cyclic…
    assert!(graph.edges.contains_key(&("serve::alpha".into(), "serve::beta".into())));
    assert!(graph.edges.contains_key(&("serve::beta".into(), "serve::alpha".into())));
    assert_eq!(
        graph.cyclic_locks().into_iter().collect::<Vec<_>>(),
        vec!["serve::alpha".to_string(), "serve::beta".to_string()]
    );
    // …and the pass reports exactly the cycle (both sites carry LOCK ORDER
    // comments, so nothing else fires).
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].pass, Pass::LockOrder);
    assert_eq!(findings[0].file, "crates/serve/src/lib.rs");
    assert!(findings[0].message.contains("cycle"), "{}", findings[0].message);
}

#[test]
fn lock_cycle_fixture_is_ignored_outside_scope() {
    // The same content in a non-serving-stack crate contributes nothing.
    let f = scan_as("lock_cycle.rs", "crates/core/src/lib.rs");
    let (sites, graph) = lockorder::collect(&[f]);
    assert!(sites.is_empty());
    assert!(graph.edges.is_empty());
}

#[test]
fn bare_wait_fixture_is_flagged() {
    let f = scan_as("bare_wait.rs", "crates/serve/src/lib.rs");
    let (findings, summary) = condvar::lint_condvars(&[f]);
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].pass, Pass::CondvarDiscipline);
    assert_eq!(findings[0].file, "crates/serve/src/lib.rs");
    assert_eq!(findings[0].line, 14, "the un-looped wait line");
    assert!(findings[0].message.contains("predicate"), "{}", findings[0].message);
    // The producer's notify and guarded mutation were still seen.
    assert_eq!(summary.waits, 1);
    assert_eq!(summary.notifies, 1);
    assert!(summary.guarded_mutations >= 1);
}

#[test]
fn relaxed_handoff_fixture_is_flagged() {
    let f = scan_as("relaxed_handoff.rs", "crates/serve/src/lib.rs");
    let (findings, sites) = atomics::lint_atomics_classified(&[f]);
    assert_eq!(findings.len(), 2, "both claimed-handoff sites fire: {findings:?}");
    for f in &findings {
        assert_eq!(f.pass, Pass::AtomicsLint);
        assert!(f.message.contains("Relaxed"), "{}", f.message);
    }
    assert_eq!(findings[0].line, 12);
    assert_eq!(findings[1].line, 17);
    assert!(sites
        .iter()
        .all(|s| s.relaxed && s.class == Some(atomics::SiteClass::Handoff)));
}

#[test]
fn committed_lock_snapshot_matches_live_graph() {
    let committed = std::fs::read_to_string(workspace_root().join(analyzer::LOCK_SNAPSHOT_REL_PATH)).unwrap();
    let files = analyzer::scan_sources(&workspace_root()).unwrap();
    let (findings, graph) = lockorder::run(&files, Some(&committed), analyzer::LOCK_SNAPSHOT_REL_PATH);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(lockorder::render_snapshot(&graph), committed);
    // Tampering with the committed order is reported as staleness at the
    // first differing line.
    let tampered = committed.replacen("parallel::submit_lock -> parallel::state", "parallel::state", 1);
    assert_ne!(tampered, committed);
    let (findings, _) = lockorder::run(&files, Some(&tampered), analyzer::LOCK_SNAPSHOT_REL_PATH);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("stale"), "{}", findings[0].message);
    // A missing snapshot is reported as such.
    let (findings, _) = lockorder::run(&files, None, analyzer::LOCK_SNAPSHOT_REL_PATH);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("missing"), "{}", findings[0].message);
}
