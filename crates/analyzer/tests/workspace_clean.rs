//! Integration net for the analyzer: the real workspace must come out
//! clean, and each deliberately-broken fixture must be caught by its lint
//! with the right `file:line`.

use analyzer::scan::{scan_file, scan_str, ScannedFile};
use analyzer::{analyze_workspace, atomics, symbolic, unsafe_audit, Options, Pass};
use iwino_rational::Rational;
use iwino_transforms::{Matrix, WinogradTransform};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Scan a fixture file but report it under an arbitrary pretend path, so
/// allowlist-dependent rules can be exercised from fixture content.
fn scan_as(fixture: &str, pretend_path: &str) -> ScannedFile {
    let src = std::fs::read_to_string(fixtures_dir().join(fixture)).unwrap();
    ScannedFile {
        rel_path: pretend_path.to_string(),
        lines: scan_str(&src),
    }
}

#[test]
fn real_workspace_is_clean() {
    let analysis = analyze_workspace(&Options {
        root: workspace_root(),
        fix_snapshot: false,
    })
    .unwrap();
    let rendered: Vec<String> = analysis.findings.iter().map(|f| f.to_string()).collect();
    assert!(
        analysis.findings.is_empty(),
        "the workspace must stay analyzer-clean; findings:\n{}",
        rendered.join("\n")
    );
    assert!(analysis.is_clean());
    // Coverage floor: r ∈ 2..=9 with both α-preference flags yields 16
    // distinct planner-reachable (n, r) pairs, every one proven.
    assert_eq!(analysis.pairs_verified, 16);
    assert!(analysis.files_scanned > 50, "scanned {}", analysis.files_scanned);
    let json = analysis.to_json().pretty();
    // The report inherits whatever schema version obs currently exports —
    // hard-coding the number here would silently pin it.
    assert!(json.contains(&format!("\"schema_version\": {}", iwino_obs::SCHEMA_VERSION)));
    assert!(json.contains("\"kind\": \"analysis\""));
    assert!(json.contains("\"clean\": true"));
    assert!(json.contains("\"transform_bounds\""));
    // The concurrency passes actually saw the serving stack: the lock graph
    // and condvar protocol are non-trivial in this workspace.
    assert!(!analysis.lock_graph.locks.is_empty());
    assert!(!analysis.lock_graph.edges.is_empty());
    assert!(
        analysis.atomic_sites.len() > 20,
        "sites: {}",
        analysis.atomic_sites.len()
    );
    assert!(
        analysis.condvar_summary.waits >= 3,
        "waits: {}",
        analysis.condvar_summary.waits
    );
    assert!(analysis.condvar_summary.notifies >= 3);
    assert!(json.contains("\"concurrency\""));
}

#[test]
fn missing_safety_fixture_is_flagged() {
    // In an allowlisted file, the undocumented unsafe block trips the
    // SAFETY-adjacency rule…
    let f = scan_as("missing_safety.rs", "crates/parallel/src/lib.rs");
    let findings = unsafe_audit::audit_unsafe(&[f]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].pass, Pass::UnsafeAudit);
    assert_eq!(findings[0].file, "crates/parallel/src/lib.rs");
    assert_eq!(findings[0].line, 5);
    assert!(findings[0].message.contains("SAFETY:"));
    // …and anywhere else the allowlist rule fires instead.
    let f = scan_as("missing_safety.rs", "crates/core/src/kernel.rs");
    let findings = unsafe_audit::audit_unsafe(&[f]);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("allowlist"));
    // The documented twin is clean in an allowlisted file.
    let f = scan_as("documented_safety.rs", "crates/parallel/src/lib.rs");
    assert!(unsafe_audit::audit_unsafe(&[f]).is_empty());
}

#[test]
fn safetyless_gemm_kernel_fixture_is_flagged() {
    // crates/gemm's kernel files are allowlisted like crates/simd's, so an
    // undocumented unsafe site there trips the SAFETY-adjacency rule (one
    // finding per site: the dispatch call and the raw-pointer impl)…
    let f = scan_as("gemm_kernel_no_safety.rs", "crates/gemm/src/avx2.rs");
    let findings = unsafe_audit::audit_unsafe(&[f]);
    assert_eq!(findings.len(), 2, "{findings:?}");
    for finding in &findings {
        assert_eq!(finding.pass, Pass::UnsafeAudit);
        assert_eq!(finding.file, "crates/gemm/src/avx2.rs");
        assert!(finding.message.contains("SAFETY:"));
    }
    // …while outside the gemm kernel allowlist the allowlist rule fires.
    let f = scan_as("gemm_kernel_no_safety.rs", "crates/gemm/src/lib.rs");
    let findings = unsafe_audit::audit_unsafe(&[f]);
    assert_eq!(findings.len(), 2);
    assert!(findings.iter().all(|f| f.message.contains("allowlist")));
}

#[test]
fn undocumented_relaxed_fixture_is_flagged() {
    let root = fixtures_dir();
    let f = scan_file(&root, &root.join("undocumented_relaxed.rs")).unwrap();
    let findings = atomics::lint_atomics(&[f]);
    assert_eq!(findings.len(), 1, "only the undocumented site fires: {findings:?}");
    assert_eq!(findings[0].pass, Pass::AtomicsLint);
    assert_eq!(findings[0].file, "undocumented_relaxed.rs");
    assert_eq!(findings[0].line, 13);
}

#[test]
fn missing_forbid_fixture_is_flagged() {
    let root = fixtures_dir().join("ws_no_forbid");
    let f = scan_file(&root, &root.join("src/lib.rs")).unwrap();
    let findings = unsafe_audit::audit_forbid(&[f]);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].file, "src/lib.rs");
    assert!(findings[0].message.contains("forbid(unsafe_code)"));
}

/// Parse the `# AT` / `# G` / `# DT` sections of a transform fixture.
fn parse_transform_fixture(name: &str) -> (Matrix, Matrix, Matrix) {
    let src = std::fs::read_to_string(fixtures_dir().join(name)).unwrap();
    let mut sections: Vec<Vec<&str>> = Vec::new();
    for line in src.lines() {
        if let Some(header) = line.strip_prefix('#') {
            let header = header.trim();
            if matches!(header, "AT" | "G" | "DT") {
                sections.push(Vec::new());
            }
        } else if !line.trim().is_empty() {
            sections.last_mut().expect("row before any section header").push(line);
        }
    }
    assert_eq!(sections.len(), 3, "fixture needs AT, G and DT sections");
    let mut mats = sections.iter().map(|rows| Matrix::parse(rows));
    (mats.next().unwrap(), mats.next().unwrap(), mats.next().unwrap())
}

#[test]
fn typod_transform_fixture_fails_symbolic_verification() {
    let (at, g, dt) = parse_transform_fixture("bad_g63_transform.txt");
    let err = symbolic::verify_matrices(6, 3, &at, &g, &dt).unwrap_err();
    assert!(err.contains("F(6,3)"), "err: {err}");
    // Repairing the single typo'd coefficient makes the same triple pass —
    // the fixture is broken by exactly that entry.
    let mut g_fixed = g.clone();
    g_fixed[(3, 1)] = Rational::new(1, 45);
    symbolic::verify_matrices(6, 3, &at, &g_fixed, &dt).unwrap();
    // And it matches the generated transform entry for entry.
    let t = WinogradTransform::generate(6, 3);
    assert_eq!(g_fixed, t.g);
    assert_eq!(at, t.at);
    assert_eq!(dt, t.dt);
}

#[test]
fn stale_snapshot_is_reported_with_first_differing_line() {
    let committed = std::fs::read_to_string(workspace_root().join(analyzer::SNAPSHOT_REL_PATH)).unwrap();
    // Unchanged snapshot: only identity findings could appear, and there
    // are none.
    let (findings, rows) = symbolic::run(Some(&committed), analyzer::SNAPSHOT_REL_PATH);
    assert!(findings.is_empty(), "{findings:?}");
    assert_eq!(rows.len(), 16);
    // Tampered snapshot: exactly one staleness finding pointing at the
    // first differing line.
    let tampered = committed.replacen("max_coeff=32 ", "max_coeff=33 ", 1);
    assert_ne!(committed, tampered);
    let (findings, _) = symbolic::run(Some(&tampered), analyzer::SNAPSHOT_REL_PATH);
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].pass, Pass::TransformVerify);
    assert!(findings[0].line > 0);
    assert!(findings[0].message.contains("stale"));
    // Missing snapshot: reported as such.
    let (findings, _) = symbolic::run(None, analyzer::SNAPSHOT_REL_PATH);
    assert_eq!(findings.len(), 1);
    assert!(findings[0].message.contains("missing"));
}
