// Fixture: two functions acquire the same pair of locks in opposite
// orders — a latent AB/BA deadlock the lock-order pass must flag as a
// cycle even though both sites carry LOCK ORDER comments.

struct S {
    alpha: std::sync::Mutex<u32>,
    beta: std::sync::Mutex<u32>,
}

impl S {
    fn ab(&self) {
        let a = self.alpha.lock().unwrap();
        // LOCK ORDER: serve::alpha -> serve::beta.
        let b = self.beta.lock().unwrap();
        drop(b);
        drop(a);
    }

    fn ba(&self) {
        let b = self.beta.lock().unwrap();
        // LOCK ORDER: serve::beta -> serve::alpha.
        let a = self.alpha.lock().unwrap();
        drop(a);
        drop(b);
    }
}
