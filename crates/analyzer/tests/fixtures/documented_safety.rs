// Clean fixture: the unsafe block carries an adjacent justification.
pub fn read_first(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    // SAFETY: `p` comes from a live slice borrow; callers must pass a
    // non-empty slice (debug-asserted), so the read is in bounds.
    unsafe { *p }
}
