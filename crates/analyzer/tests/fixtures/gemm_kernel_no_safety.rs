// Deliberately broken fixture: a gemm-style microkernel whose unsafe sites
// carry no justification comment, so the audit must flag both of them even
// inside an allowlisted crates/gemm kernel file.
pub(crate) fn tile(kc: usize, a: &[f32], c: &mut [f32]) {
    assert!(a.len() >= kc);
    unsafe { tile_impl(kc, a.as_ptr(), c.as_mut_ptr()) }
}

unsafe fn tile_impl(kc: usize, a: *const f32, c: *mut f32) {
    for kk in 0..kc {
        *c.add(kk) += *a.add(kk);
    }
}
