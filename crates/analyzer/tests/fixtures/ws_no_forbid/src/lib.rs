//! Deliberately broken fixture: a crate root (when scanned with the
//! `ws_no_forbid` directory as the workspace root) that is missing
//! `#![forbid(unsafe_code)]`.

pub fn identity(x: u32) -> u32 {
    x
}
