// Fixture: an ORDERING justification that *claims* a cross-thread
// handoff but uses Relaxed — the pairing it names cannot exist, so the
// atomics pass must flag the site.

use std::sync::atomic::{AtomicBool, Ordering};

static READY: AtomicBool = AtomicBool::new(false);

fn publish() {
    // ORDERING: Relaxed — [handoff] hands off the filled buffer to the
    // consumer thread once it observes the flag.
    READY.store(true, Ordering::Relaxed);
}

fn consume() -> bool {
    // ORDERING: Relaxed — [handoff] pairs with the store in `publish`.
    READY.load(Ordering::Relaxed)
}
