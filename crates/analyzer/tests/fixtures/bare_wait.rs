// Fixture: a Condvar::wait outside any predicate loop — the classic
// spurious-wakeup / missed-wakeup shape the condvar pass must flag.

struct S {
    ready: std::sync::Condvar,
    state: std::sync::Mutex<bool>,
}

impl S {
    fn consume(&self) -> bool {
        let guard = self.state.lock().unwrap();
        // A single un-looped wait: a spurious wakeup (or a notify that
        // raced ahead of this wait) returns with the predicate unchecked.
        let guard = self.ready.wait(guard).unwrap();
        *guard
    }

    fn produce(&self) {
        let mut guard = self.state.lock().unwrap();
        *guard = true;
        self.ready.notify_one();
    }
}
