// Deliberately broken fixture: the unsafe block below carries no safety
// justification comment, so the unsafe audit must flag it.
pub fn read_first(v: &[u8]) -> u8 {
    let p = v.as_ptr();
    unsafe { *p }
}
