// Deliberately broken fixture: one documented Relaxed site, one not.
use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);
pub static MISSES: AtomicU64 = AtomicU64::new(0);

pub fn hit() {
    // ORDERING: monotonic counter, no data published through it.
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn miss() {
    MISSES.fetch_add(1, Ordering::Relaxed);
}
