//! Backward-filter pass (`dW`) for CNN training.
//!
//! `dW[oc, fh, fw, ic] = Σ_{b, oy, ox} dY[b, oy, ox, oc] · X[b, oy·sh+fh−ph, ox·sw+fw−pw, ic]`
//!
//! The paper's training experiment notes that "the training speed is also
//! related to computing filter gradients" (§6.3.2) but Winograd is not
//! applied to this pass; like Dragon-Alpha we compute it with a direct
//! outer-product accumulation, parallelised over the `(fh, fw)` taps —
//! each tap's `OC×IC` gradient panel is an independent reduction over all
//! output pixels, and both inner axes run along contiguous NHWC channels.

use iwino_parallel as par;
use iwino_tensor::{ConvShape, Tensor4};

/// Compute the filter gradient for the convolution described by `shape`
/// (any stride). Returns `dW` in the native `OC×FH×FW×IC` layout.
pub fn filter_grad(x: &Tensor4<f32>, dy: &Tensor4<f32>, shape: &ConvShape) -> Tensor4<f32> {
    let s = *shape;
    assert_eq!(x.dims(), s.x_dims(), "x dims mismatch");
    assert_eq!(dy.dims(), s.y_dims(), "dy dims mismatch");
    let (oh, ow) = (s.oh(), s.ow());
    let (ic, oc) = (s.ic, s.oc);
    let xs = x.as_slice();
    let dys = dy.as_slice();

    // Per-tap OC×IC panels, computed independently then scattered into the
    // OC×FH×FW×IC result.
    let taps = s.fh * s.fw;
    let mut panels = vec![0.0f32; taps * oc * ic];
    {
        let parts = par::SliceParts::new(&mut panels, oc * ic);
        par::parallel_for(taps, &|tap| {
            let panel = parts.take(tap);
            let (fh, fw) = (tap / s.fw, tap % s.fw);
            for b in 0..s.n {
                let x_img = &xs[b * s.ih * s.iw * ic..(b + 1) * s.ih * s.iw * ic];
                let dy_img = &dys[b * oh * ow * oc..(b + 1) * oh * ow * oc];
                for oy in 0..oh {
                    let iy = (oy * s.sh + fh) as isize - s.ph as isize;
                    if iy < 0 || iy >= s.ih as isize {
                        continue;
                    }
                    let x_row = &x_img[iy as usize * s.iw * ic..(iy as usize + 1) * s.iw * ic];
                    let dy_row = &dy_img[oy * ow * oc..(oy + 1) * ow * oc];
                    for ox in 0..ow {
                        let px = (ox * s.sw + fw) as isize - s.pw as isize;
                        if px < 0 || px >= s.iw as isize {
                            continue;
                        }
                        let x_px = &x_row[px as usize * ic..(px as usize + 1) * ic];
                        let dy_px = &dy_row[ox * oc..(ox + 1) * oc];
                        for (o, &g) in dy_px.iter().enumerate() {
                            if g == 0.0 {
                                continue;
                            }
                            let dst = &mut panel[o * ic..(o + 1) * ic];
                            for (d, &xv) in dst.iter_mut().zip(x_px) {
                                *d += g * xv;
                            }
                        }
                    }
                }
            }
        });
    }

    let mut dw = Tensor4::<f32>::zeros(s.w_dims());
    let dws = dw.as_mut_slice();
    for tap in 0..taps {
        let (fh, fw) = (tap / s.fw, tap % s.fw);
        for o in 0..oc {
            let src = &panels[(tap * oc + o) * ic..(tap * oc + o + 1) * ic];
            let dst = &mut dws[((o * s.fh + fh) * s.fw + fw) * ic..((o * s.fh + fh) * s.fw + fw + 1) * ic];
            dst.copy_from_slice(src);
        }
    }
    dw
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwino_baselines::direct_conv;

    /// Finite-difference check: perturb one weight, the loss `Σ y²/2`
    /// changes by `dW · ε` to first order.
    #[test]
    fn matches_finite_differences() {
        let s = ConvShape::square(1, 6, 2, 3, 3);
        let x = Tensor4::<f32>::random(s.x_dims(), 200, -1.0, 1.0);
        let mut w = Tensor4::<f32>::random(s.w_dims(), 201, -0.5, 0.5);
        // dL/dy = y for L = Σ y²/2 ⟹ dW = filter_grad(x, y).
        let y = direct_conv(&x, &w, &s);
        let dw = filter_grad(&x, &y, &s);
        let eps = 1e-3f32;
        for probe in [(0usize, 0usize, 0usize, 0usize), (2, 1, 2, 1), (1, 2, 0, 1)] {
            let (o, fh, fw, i) = probe;
            let orig = w.at(o, fh, fw, i);
            *w.at_mut(o, fh, fw, i) = orig + eps;
            let yp = direct_conv(&x, &w, &s);
            *w.at_mut(o, fh, fw, i) = orig - eps;
            let ym = direct_conv(&x, &w, &s);
            *w.at_mut(o, fh, fw, i) = orig;
            let lp: f64 = yp.as_slice().iter().map(|&v| (v as f64).powi(2) / 2.0).sum();
            let lm: f64 = ym.as_slice().iter().map(|&v| (v as f64).powi(2) / 2.0).sum();
            let fd = (lp - lm) / (2.0 * eps as f64);
            let an = dw.at(o, fh, fw, i) as f64;
            assert!(
                (fd - an).abs() < 1e-2 * an.abs().max(1.0),
                "probe {probe:?}: fd {fd} vs analytic {an}"
            );
        }
    }

    /// Adjointness in the filter argument:
    /// ⟨conv(x, W), dy⟩ = ⟨W, filter_grad(x, dy)⟩.
    #[test]
    fn filter_adjointness() {
        let s = ConvShape::square(2, 7, 3, 4, 5);
        let x = Tensor4::<f32>::random(s.x_dims(), 210, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 211, -1.0, 1.0);
        let dy = Tensor4::<f32>::random(s.y_dims(), 212, -1.0, 1.0);
        let y = direct_conv(&x, &w, &s);
        let dw = filter_grad(&x, &dy, &s);
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = w
            .as_slice()
            .iter()
            .zip(dw.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_filter_grad_adjointness() {
        let s = ConvShape {
            sh: 2,
            sw: 2,
            ..ConvShape::square(1, 8, 2, 3, 3)
        };
        let x = Tensor4::<f32>::random(s.x_dims(), 220, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 221, -1.0, 1.0);
        let dy = Tensor4::<f32>::random(s.y_dims(), 222, -1.0, 1.0);
        let y = direct_conv(&x, &w, &s);
        let dw = filter_grad(&x, &dy, &s);
        let lhs: f64 = y
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        let rhs: f64 = w
            .as_slice()
            .iter()
            .zip(dw.as_slice())
            .map(|(&a, &b)| a as f64 * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn zero_dy_gives_zero_grad() {
        let s = ConvShape::square(1, 5, 2, 2, 3);
        let x = Tensor4::<f32>::random(s.x_dims(), 230, -1.0, 1.0);
        let dy = Tensor4::<f32>::zeros(s.y_dims());
        let dw = filter_grad(&x, &dy, &s);
        assert!(dw.as_slice().iter().all(|&v| v == 0.0));
    }
}
