//! Filter transformation for `Γα(n, r)`.
//!
//! For every filter row `fh` and channel pair `(oc, ic)`, the `r` taps along
//! the width axis are lifted into the α-state Winograd domain:
//! `TW[fh, s, ic, oc] = Σ_fw G[s, fw] · W[oc, fh, fw, ic]`.
//!
//! The output layout keeps `oc` innermost so the element-wise multiply stage
//! FMAs along a contiguous `oc` run — the same reason the paper transposes
//! filters to `FH×FW×IC×OC` for forward convolution (§5.1).
//!
//! For deconvolution, the 180° spatial rotation and the `IC`/`OC` role swap
//! are **fused into this transform** (§5.1: "the 180-degree filter-rotation
//! is integrated into filter-transformation"): [`TransformedFilter::deconv`]
//! reads `W[oc, FH−1−fh, FW−1−fw, ic]` directly, so no rotated copy of the
//! filter is ever materialised.

use iwino_parallel as par;
use iwino_tensor::{Tensor4, Tensor5};
use iwino_transforms::WinogradTransform;

/// Winograd-domain filter bank: `data[((fh·α + s)·IC + ic)·OC + oc]`.
///
/// "IC"/"OC" here are the *contraction* and *output* channel counts of the
/// convolution being run — for deconvolution they are the forward filter's
/// OC and IC respectively.
pub struct TransformedFilter {
    pub fh: usize,
    pub alpha: usize,
    /// Contraction channels.
    pub ic: usize,
    /// Output channels.
    pub oc: usize,
    data: Vec<f32>,
}

impl TransformedFilter {
    /// Forward transform of `w` (`OC×FH×FW×IC`) for the given `F(n, r)`.
    pub fn forward(w: &Tensor4<f32>, t: &WinogradTransform) -> Self {
        let [oc, fh, fw, ic] = w.dims();
        assert_eq!(fw, t.r, "filter width must equal the kernel's r");
        Self::build(w, t, false, oc, fh, fw, ic)
    }

    /// Deconvolution transform: 180°-rotated, channel-swapped filter. The
    /// result contracts over the forward `oc` and produces the forward `ic`.
    pub fn deconv(w: &Tensor4<f32>, t: &WinogradTransform) -> Self {
        let [oc, fh, fw, ic] = w.dims();
        assert_eq!(fw, t.r, "filter width must equal the kernel's r");
        Self::build(w, t, true, oc, fh, fw, ic)
    }

    fn build(
        w: &Tensor4<f32>,
        t: &WinogradTransform,
        rotate: bool,
        oc: usize,
        fh: usize,
        fw: usize,
        ic: usize,
    ) -> Self {
        let alpha = t.alpha;
        let r = t.r;
        let g = t.g.to_f64();
        let ws = w.as_slice();
        // Contraction/output channel counts of the *resulting* convolution.
        let (cc, out_c) = if rotate { (oc, ic) } else { (ic, oc) };
        let mut data = vec![0.0f32; fh * alpha * cc * out_c];
        // One parallel task per filter row: each writes the contiguous
        // `α·cc·out_c` span of its planes.
        let parts = par::SliceParts::new(&mut data, alpha * cc * out_c);
        par::parallel_for(fh, &|h| {
            let row_planes = parts.take(h);
            // Source filter row (rotated filters read the mirrored row).
            let src_h = if rotate { fh - 1 - h } else { h };
            for s in 0..alpha {
                let g_row = &g[s * r..(s + 1) * r];
                let dst_plane = &mut row_planes[s * cc * out_c..(s + 1) * cc * out_c];
                for o in 0..oc {
                    for x in 0..fw {
                        // Rotated filters also mirror the width axis: tap x of
                        // the rotated filter is tap FW−1−x of the original.
                        let coeff = if rotate { g_row[fw - 1 - x] } else { g_row[x] } as f32;
                        if coeff == 0.0 {
                            continue;
                        }
                        let src = &ws[((o * fh + src_h) * fw + x) * ic..((o * fh + src_h) * fw + x + 1) * ic];
                        if rotate {
                            // dst[(contraction = o) · out_c + (out = i)]
                            let dst = &mut dst_plane[o * out_c..(o + 1) * out_c];
                            for (d, &v) in dst.iter_mut().zip(src) {
                                *d += coeff * v;
                            }
                        } else {
                            // dst[(contraction = i) · out_c + (out = o)]
                            for (i, &v) in src.iter().enumerate() {
                                dst_plane[i * out_c + o] += coeff * v;
                            }
                        }
                    }
                }
            }
        });
        drop(parts);
        TransformedFilter {
            fh,
            alpha,
            ic: cc,
            oc: out_c,
            data,
        }
    }

    /// 3-D forward transform of `w` (`OC×FD×FH×FW×IC`): one plane per
    /// `(fd, fh)` pair, plane index `fd·FH + fh`. Stage 2 of the algorithm
    /// is untouched — this is the "expanding Stage1 Im2col to ND" of §4.2.
    pub fn forward3d(w: &Tensor5<f32>, t: &WinogradTransform) -> Self {
        let [oc, fd, fh, fw, ic] = w.dims();
        assert_eq!(fw, t.r, "filter width must equal the kernel's r");
        let alpha = t.alpha;
        let r = t.r;
        let g = t.g.to_f64();
        let ws = w.as_slice();
        let planes = fd * fh;
        let mut data = vec![0.0f32; planes * alpha * ic * oc];
        for plane in 0..planes {
            let (d, h) = (plane / fh, plane % fh);
            for s in 0..alpha {
                let g_row = &g[s * r..(s + 1) * r];
                let dst_plane = &mut data[(plane * alpha + s) * ic * oc..(plane * alpha + s + 1) * ic * oc];
                for o in 0..oc {
                    for (x, &gc) in g_row.iter().enumerate().take(fw) {
                        let coeff = gc as f32;
                        if coeff == 0.0 {
                            continue;
                        }
                        let base = (((o * fd + d) * fh + h) * fw + x) * ic;
                        let src = &ws[base..base + ic];
                        for (i, &v) in src.iter().enumerate() {
                            dst_plane[i * oc + o] += coeff * v;
                        }
                    }
                }
            }
        }
        TransformedFilter {
            fh: planes,
            alpha,
            ic,
            oc,
            data,
        }
    }

    /// The contiguous `oc` row for `(plane, state, contraction channel)`.
    /// For 2-D filters the plane is `fh`; for 3-D it is `fd·FH + fh`.
    #[inline]
    pub fn row(&self, fh: usize, s: usize, ic: usize) -> &[f32] {
        let base = ((fh * self.alpha + s) * self.ic + ic) * self.oc;
        &self.data[base..base + self.oc]
    }

    /// The contiguous `IC×OC` panel for `(plane, state)` — row `ic` of the
    /// panel is [`TransformedFilter::row`]`(plane, s, ic)`. The FMA
    /// microkernel walks this panel linearly, one bounds check per block
    /// instead of one per `(ic, state)` pair.
    #[inline]
    pub fn panel(&self, fh: usize, s: usize) -> &[f32] {
        let base = (fh * self.alpha + s) * self.ic * self.oc;
        &self.data[base..base + self.ic * self.oc]
    }

    /// Bytes held by the transformed bank (used by the memory accounting in
    /// the experiments).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }
}

/// Untransformed filter in the `FH×FW×IC×OC` layout, used by the direct
/// (GEMM-style) boundary segments. For deconvolution the rotation/swap is
/// fused here too: `rotate = true` yields `FH×FW×OC×IC` reading the mirrored
/// taps.
pub fn filter_hwio(w: &Tensor4<f32>, rotate: bool) -> Tensor4<f32> {
    let [oc, fh, fw, ic] = w.dims();
    let (cc, out_c) = if rotate { (oc, ic) } else { (ic, oc) };
    let mut out = Tensor4::zeros([fh, fw, cc, out_c]);
    for o in 0..oc {
        for h in 0..fh {
            for x in 0..fw {
                for i in 0..ic {
                    let v = w.at(o, h, x, i);
                    if rotate {
                        *out.at_mut(fh - 1 - h, fw - 1 - x, o, i) = v;
                    } else {
                        *out.at_mut(h, x, i, o) = v;
                    }
                }
            }
        }
    }
    out
}

/// 3-D filter in `planes×FW×IC×OC` layout (plane = `fd·FH + fh`) for the
/// direct boundary segments of `conv3d`.
pub fn filter_hwio3d(w: &Tensor5<f32>) -> Vec<f32> {
    let [oc, fd, fh, fw, ic] = w.dims();
    let planes = fd * fh;
    let mut out = vec![0.0f32; planes * fw * ic * oc];
    for o in 0..oc {
        for d in 0..fd {
            for h in 0..fh {
                for x in 0..fw {
                    for i in 0..ic {
                        let plane = d * fh + h;
                        out[((plane * fw + x) * ic + i) * oc + o] = w.at(o, d, h, x, i);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwino_tensor::rotate_filter_180;

    #[test]
    fn forward_matches_manual_transform() {
        let t = WinogradTransform::generate(2, 3);
        let g = t.g.to_f64();
        let w = Tensor4::<f32>::random([3, 2, 3, 4], 50, -1.0, 1.0);
        let tw = TransformedFilter::forward(&w, &t);
        assert_eq!((tw.fh, tw.alpha, tw.ic, tw.oc), (2, 4, 4, 3));
        for h in 0..2 {
            for s in 0..4 {
                for i in 0..4 {
                    let row = tw.row(h, s, i);
                    for (o, &got) in row.iter().enumerate().take(3) {
                        let want: f64 = (0..3).map(|x| g[s * 3 + x] * w.at(o, h, x, i) as f64).sum();
                        assert!((got as f64 - want).abs() < 1e-6, "h{h} s{s} i{i} o{o}");
                    }
                }
            }
        }
    }

    #[test]
    fn deconv_transform_equals_forward_of_rotated_filter() {
        let t = WinogradTransform::generate(4, 5);
        let w = Tensor4::<f32>::random([3, 5, 5, 2], 51, -1.0, 1.0);
        let fused = TransformedFilter::deconv(&w, &t);
        let rotated = rotate_filter_180(&w); // IC×FH×FW×OC
        let plain = TransformedFilter::forward(&rotated, &t);
        assert_eq!((fused.ic, fused.oc), (plain.ic, plain.oc));
        for h in 0..5 {
            for s in 0..t.alpha {
                for i in 0..fused.ic {
                    let a = fused.row(h, s, i);
                    let b = plain.row(h, s, i);
                    for (x, y) in a.iter().zip(b) {
                        assert!((x - y).abs() < 1e-6);
                    }
                }
            }
        }
    }

    #[test]
    fn hwio_rotate_matches_tensor_helper() {
        let w = Tensor4::<f32>::random([2, 3, 4, 5], 52, -1.0, 1.0);
        let got = filter_hwio(&w, true);
        let rot = rotate_filter_180(&w); // IC×FH×FW×OC
        let want = filter_hwio(&rot, false);
        assert_eq!(got.dims(), want.dims());
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn bytes_accounting() {
        let t = WinogradTransform::generate(6, 3);
        let w = Tensor4::<f32>::random([8, 3, 3, 4], 53, -1.0, 1.0);
        let tw = TransformedFilter::forward(&w, &t);
        assert_eq!(tw.bytes(), 3 * 8 * 4 * 8 * 4);
    }
}
