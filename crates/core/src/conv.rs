//! Convolution / deconvolution orchestration.
//!
//! [`conv2d`] plans the width axis (§5.5), transforms the filters once per
//! call (forward or rotated, §5.1), and then runs one parallel task per
//! `N×OH` output row — the same task decomposition the paper uses for
//! thread blocks, chosen because `feature-map size × channel size` is
//! roughly constant across CNN layers so the task count stays consistent
//! (§5.1).

use crate::error::{expect_dims, ConvError};
use crate::filter::{filter_hwio, TransformedFilter};
use crate::kernel::{cached_kernel, GammaKernel, RowJob, Scratch, Variant};
use crate::plan::{default_kernel_prefs, GammaSpec, KernelChoice, SegmentPlan};
use iwino_gemm::{sgemm_prepacked, AllocScratch, PackedB, ScratchProvider};
use iwino_obs as obs;
use iwino_parallel as par;
use iwino_simd as simd;
use iwino_tensor::{ConvShape, Tensor4};
use std::cell::RefCell;
use std::sync::Arc;

/// Output epilogue fused into the convolution's row pass (bias add and/or
/// activation applied while the freshly written row is still cache-hot —
/// the kind of operator fusion Dragon-Alpha's higher-level encapsulation
/// performs over these kernels, §5.7).
#[derive(Clone, Debug, Default, PartialEq)]
pub enum Epilogue {
    /// Plain convolution output.
    #[default]
    None,
    /// `y += bias[oc]`.
    Bias(Vec<f32>),
    /// `y = max(y, 0)`.
    Relu,
    /// `y = y > 0 ? y : slope·y`.
    LeakyRelu(f32),
    /// `y = act(y + bias[oc])` with LeakyReLU slope (0 = plain ReLU).
    BiasLeakyRelu(Vec<f32>, f32),
}

impl Epilogue {
    /// Apply the epilogue to a contiguous `…×OC` output slice (a row or the
    /// whole tensor — the layout is uniform along OC). Public so engine
    /// backends whose kernels cannot fuse the epilogue apply the identical
    /// arithmetic after the fact.
    pub fn apply(&self, out_row: &mut [f32], oc: usize) {
        match self {
            Epilogue::None => {}
            Epilogue::Bias(b) => {
                debug_assert_eq!(b.len(), oc);
                for px in out_row.chunks_exact_mut(oc) {
                    for (v, &bv) in px.iter_mut().zip(b) {
                        *v += bv;
                    }
                }
            }
            Epilogue::Relu => {
                for v in out_row.iter_mut() {
                    *v = v.max(0.0);
                }
            }
            Epilogue::LeakyRelu(slope) => {
                for v in out_row.iter_mut() {
                    if *v < 0.0 {
                        *v *= slope;
                    }
                }
            }
            Epilogue::BiasLeakyRelu(b, slope) => {
                debug_assert_eq!(b.len(), oc);
                for px in out_row.chunks_exact_mut(oc) {
                    for (v, &bv) in px.iter_mut().zip(b) {
                        let t = *v + bv;
                        *v = if t >= 0.0 { t } else { slope * t };
                    }
                }
            }
        }
    }
}

/// Tuning and selection options for [`conv2d_opts`] / [`deconv2d_opts`].
#[derive(Clone, Debug, Default)]
pub struct ConvOptions {
    /// Force a specific primary kernel instead of the automatic choice
    /// (used by the benchmark harness to sweep `Γα(n, r)` variants).
    pub force_kernels: Option<Vec<GammaSpec>>,
    /// Prefer `α = 16` kernels where both α = 8 and α = 16 apply (r = 7).
    pub prefer_alpha16: bool,
    /// Upgrade α = 16 kernels to the `c64` cache-block variant (§5.6) when
    /// the output-channel count is a multiple of 64 ("many channel sizes in
    /// modern CNNs are multiples of 64").
    pub allow_c64: bool,
}

impl ConvOptions {
    /// The §5.5 segment plan these options produce for an `OW`-wide row
    /// with filter width `r`. Public so the engine's workspace accounting
    /// can see which α a shape resolves to.
    pub fn plan_for(&self, ow: usize, r: usize, oc: usize) -> SegmentPlan {
        let mut prefs = match &self.force_kernels {
            Some(k) => k.clone(),
            None => default_kernel_prefs(r, self.prefer_alpha16 || r >= 8),
        };
        if self.allow_c64 && oc.is_multiple_of(64) {
            for p in &mut prefs {
                if p.alpha == 16 && p.variant == Variant::Standard {
                    p.variant = Variant::C64;
                }
            }
        }
        SegmentPlan::build(ow, &prefs)
    }
}

/// Pick reasonable [`ConvOptions`] for a shape: α = 16 kernels where they
/// apply, and the `c64` cache-block variant when the channel count is a
/// multiple of 64 (§5.6's "many channel sizes in modern CNNs are multiples
/// of 64").
pub fn auto_options(shape: &ConvShape) -> ConvOptions {
    ConvOptions {
        force_kernels: None,
        prefer_alpha16: shape.fw >= 7,
        allow_c64: shape.oc.is_multiple_of(64),
    }
}

/// 2-D convolution with the default kernel selection. Unit-stride shapes
/// run the fused Im2col-Winograd path; strided shapes route through the
/// indirect-convolution GEMM (`iwino-indirect`), which handles arbitrary
/// stride via its offset table.
/// `x` is `N×IH×IW×IC` NHWC; `w` is `OC×FH×FW×IC`; returns `N×OH×OW×OC`.
pub fn conv2d(x: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape) -> Tensor4<f32> {
    conv2d_opts(x, w, shape, &ConvOptions::default())
}

/// [`conv2d`] with explicit options. Panics on malformed requests;
/// [`try_conv2d_opts`] is the recoverable form.
pub fn conv2d_opts(x: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape, opts: &ConvOptions) -> Tensor4<f32> {
    try_conv2d_opts(x, w, shape, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// [`conv2d_opts`] returning [`ConvError`] instead of panicking.
pub fn try_conv2d_opts(
    x: &Tensor4<f32>,
    w: &Tensor4<f32>,
    shape: &ConvShape,
    opts: &ConvOptions,
) -> Result<Tensor4<f32>, ConvError> {
    try_conv2d_fused(x, w, shape, opts, &Epilogue::None)
}

/// Convolution with a fused output epilogue (bias / activation applied
/// inside the row pass while the output is cache-hot).
pub fn conv2d_fused(
    x: &Tensor4<f32>,
    w: &Tensor4<f32>,
    shape: &ConvShape,
    opts: &ConvOptions,
    epilogue: &Epilogue,
) -> Tensor4<f32> {
    try_conv2d_fused(x, w, shape, opts, epilogue).unwrap_or_else(|e| panic!("{e}"))
}

/// [`conv2d_fused`] returning [`ConvError`] instead of panicking.
pub fn try_conv2d_fused(
    x: &Tensor4<f32>,
    w: &Tensor4<f32>,
    shape: &ConvShape,
    opts: &ConvOptions,
    epilogue: &Epilogue,
) -> Result<Tensor4<f32>, ConvError> {
    if !shape.is_unit_stride() {
        // The fused Γ path is unit-stride (§4); strided shapes run the
        // indirect-convolution GEMM instead of erroring. The table and
        // packed filter are rebuilt per call here — repeated-shape callers
        // go through `iwino-engine`, whose plan cache keeps both.
        expect_dims("filter", w.dims(), shape.w_dims())?;
        expect_dims("input", x.dims(), shape.x_dims())?;
        let mut y = iwino_indirect::indirect_conv(x, w, shape);
        epilogue.apply(y.as_mut_slice(), shape.oc);
        return Ok(y);
    }
    PreparedConv::forward(w, shape, opts)?.execute(x, epilogue)
}

/// Deconvolution (backward-data): given `dy = N×OH×OW×OC` and the forward
/// filter `w = OC×FH×FW×IC`, returns `dx = N×IH×IW×IC` for the unit-stride
/// forward convolution described by `shape`. The 180° rotation and channel
/// swap are fused into the filter transform (§5.1).
pub fn deconv2d(dy: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape) -> Tensor4<f32> {
    deconv2d_opts(dy, w, shape, &ConvOptions::default())
}

/// [`deconv2d`] with explicit options. Panics on malformed requests;
/// [`try_deconv2d_opts`] is the recoverable form.
pub fn deconv2d_opts(dy: &Tensor4<f32>, w: &Tensor4<f32>, shape: &ConvShape, opts: &ConvOptions) -> Tensor4<f32> {
    try_deconv2d_opts(dy, w, shape, opts).unwrap_or_else(|e| panic!("{e}"))
}

/// [`deconv2d_opts`] returning [`ConvError`] instead of panicking.
pub fn try_deconv2d_opts(
    dy: &Tensor4<f32>,
    w: &Tensor4<f32>,
    shape: &ConvShape,
    opts: &ConvOptions,
) -> Result<Tensor4<f32>, ConvError> {
    PreparedConv::deconv(w, shape, opts)?.execute(dy, &Epilogue::None)
}

/// A planned convolution with its transformed-filter bank, reusable across
/// calls on same-shape inputs.
///
/// The original `conv2d` re-ran the §5.5 width planning and the §5.1 filter
/// transforms on every call. For the serving scenario — many forward passes
/// through fixed weights — that repeated filter transform is pure waste:
/// the bank depends only on `(w, shape, opts)`. `PreparedConv` splits the
/// call into [`PreparedConv::forward`]/[`PreparedConv::deconv`] (plan +
/// transform once) and [`PreparedConv::execute`] (the fused row pass), so a
/// plan cache (see `iwino-engine`) can amortise preparation across calls.
pub struct PreparedConv {
    /// Geometry this plan *executes* (for deconv this is the backward
    /// geometry whose input is `dy`).
    shape: ConvShape,
    plan: SegmentPlan,
    kernels: Vec<(GammaSpec, Arc<GammaKernel>, TransformedFilter)>,
    /// HWIO remainder filter pre-packed into GEMM panels (`K×OC`,
    /// `K = FH·FW·IC`), built only when the plan has a GEMM segment.
    w_packed: Option<PackedB>,
    /// Segment → kernel index, resolved once instead of per row.
    seg_kernels: Vec<Option<usize>>,
}

impl PreparedConv {
    /// Plan a forward convolution and transform `w` into the Winograd
    /// domain. `shape` must be unit-stride and `w` must be `OC×FH×FW×IC`.
    pub fn forward(w: &Tensor4<f32>, shape: &ConvShape, opts: &ConvOptions) -> Result<PreparedConv, ConvError> {
        if !shape.is_unit_stride() {
            return Err(ConvError::NonUnitStride {
                algorithm: "Im2col-Winograd",
                sh: shape.sh,
                sw: shape.sw,
            });
        }
        expect_dims("filter", w.dims(), shape.w_dims())?;
        Ok(Self::build(w, *shape, opts, false))
    }

    /// Plan the backward-data pass of the forward convolution described by
    /// `shape`. The returned plan's input is `dy = N×OH×OW×OC` and its
    /// output is `dx = N×IH×IW×IC`; the 180° rotation and channel swap are
    /// fused into the filter transform (§5.1).
    pub fn deconv(w: &Tensor4<f32>, shape: &ConvShape, opts: &ConvOptions) -> Result<PreparedConv, ConvError> {
        if !shape.is_unit_stride() {
            return Err(ConvError::NonUnitStride {
                algorithm: "Im2col-Winograd (deconv)",
                sh: shape.sh,
                sw: shape.sw,
            });
        }
        expect_dims("filter", w.dims(), shape.w_dims())?;
        // Backward-data of conv(pad p) is conv(dy, rot180(W), pad r−1−p):
        // the deconv is itself a unit-stride convolution with input dy and
        // output dx.
        let bw = ConvShape::unit(
            shape.n,
            shape.oh(),
            shape.ow(),
            shape.oc,
            shape.ic,
            shape.fh,
            shape.fw,
            shape.fh - 1 - shape.ph,
            shape.fw - 1 - shape.pw,
        );
        debug_assert_eq!(bw.oh(), shape.ih);
        debug_assert_eq!(bw.ow(), shape.iw);
        Ok(Self::build(w, bw, opts, true))
    }

    /// Shared planning + filter-transform step. For deconv, `s` is already
    /// the backward geometry (input = dy) and `w` is the *forward* filter —
    /// the rotation happens inside the filter transforms.
    fn build(w: &Tensor4<f32>, s: ConvShape, opts: &ConvOptions, rotate: bool) -> PreparedConv {
        let plan = opts.plan_for(s.ow(), s.fw, s.oc);
        // Each distinct Γ kernel (cached process-wide — transform generation
        // is exact rational arithmetic) plus its transformed filter bank.
        let ft_span = obs::span(obs::Stage::FilterTransform);
        let mut kernels: Vec<(GammaSpec, Arc<GammaKernel>, TransformedFilter)> = Vec::new();
        for spec in plan.gamma_specs() {
            let kernel = cached_kernel(spec.alpha, spec.n, spec.r, spec.variant);
            let t = kernel.transform();
            let tw = if rotate {
                TransformedFilter::deconv(w, &t)
            } else {
                TransformedFilter::forward(w, &t)
            };
            kernels.push((spec, kernel, tw));
        }
        // Untransformed HWIO filter for the GEMM remainder, flattened to
        // K×OC and pre-packed into GEMM panels at plan time (built only if
        // a segment uses it).
        let needs_direct = plan.segments.iter().any(|g| g.kernel == KernelChoice::Gemm);
        let w_packed = needs_direct.then(|| {
            let wd = filter_hwio(w, rotate);
            PackedB::pack(s.fh * s.fw * s.ic, s.oc, wd.as_slice())
        });
        drop(ft_span);
        let seg_kernels: Vec<Option<usize>> = plan
            .segments
            .iter()
            .map(|seg| match seg.kernel {
                KernelChoice::Gamma(spec) => Some(
                    kernels
                        .iter()
                        .position(|(ks, _, _)| *ks == spec)
                        .expect("planned kernel was built"),
                ),
                KernelChoice::Gemm => None,
            })
            .collect();
        PreparedConv {
            shape: s,
            plan,
            kernels,
            w_packed,
            seg_kernels,
        }
    }

    /// The geometry this plan executes (for deconv plans: the backward
    /// geometry, so `x_dims()` is the `dy` shape and `y_dims()` the `dx`).
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// Bytes held by the transformed-filter bank(s) plus the GEMM-remainder
    /// filter — the plan's resident workspace, matching the
    /// `AlgorithmClass::ImcolWinogradFused` accounting.
    pub fn filter_bank_bytes(&self) -> usize {
        let banks: usize = self
            .kernels
            .iter()
            .map(|(spec, _, _)| self.shape.fh * spec.alpha * self.shape.ic * self.shape.oc * 4)
            .sum();
        banks + self.w_packed.as_ref().map_or(0, |pb| pb.resident_bytes())
    }

    /// Run the fused row pass: transform input tiles, multiply against the
    /// prepared filter bank, accumulate over `FH×IC`, output-transform, and
    /// apply `epilogue` while the row is cache-hot. Temporaries come from
    /// plain allocations; serving paths use [`PreparedConv::execute_scratch`].
    pub fn execute(&self, x: &Tensor4<f32>, epilogue: &Epilogue) -> Result<Tensor4<f32>, ConvError> {
        self.execute_scratch(x, epilogue, &AllocScratch)
    }

    /// [`PreparedConv::execute`] with the GEMM-remainder patch and panel
    /// buffers drawn from `scratch`, so an arena-backed caller (the serving
    /// engine's workspace pool) runs allocation-free in steady state.
    pub fn execute_scratch(
        &self,
        x: &Tensor4<f32>,
        epilogue: &Epilogue,
        scratch: &dyn ScratchProvider,
    ) -> Result<Tensor4<f32>, ConvError> {
        let s = self.shape;
        expect_dims("input", x.dims(), s.x_dims())?;
        let (oh, ow) = (s.oh(), s.ow());
        let _total = obs::span(obs::Stage::Total);
        // The paper's GFLOP/s convention: count the FLOPs of the standard
        // convolution producing the same output, whatever kernel runs.
        obs::add(obs::Counter::Flops, s.flops() as u64);
        if obs::enabled() {
            // Stamp the metrics document with the dispatched microkernel ISA
            // so cross-run comparisons can detect (and refuse) cross-ISA
            // diffs. One cheap struct clone per recorded run.
            let d = simd::dispatch_info();
            obs::set_dispatch_report(obs::DispatchReport {
                isa: d.isa.to_string(),
                lane_width: d.lane_width,
                forced_scalar: d.forced_scalar,
                features: d.features.iter().map(|f| f.to_string()).collect(),
            });
        }

        let mut y = Tensor4::<f32>::zeros(s.y_dims());
        let xs = x.as_slice();
        let row_elems = ow * s.oc;
        let img_elems = s.ih * s.iw * s.ic;

        // Per-worker scratch, reused across rows (thread-local because tasks
        // of many rows land on the same worker).
        thread_local! {
            static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
        }

        // In-bounds filter rows for one output row — the dominant per-row
        // cost factor: rows near the top/bottom image borders intersect
        // fewer filter rows and are proportionally cheaper.
        let in_bounds_fh = |oy: usize| {
            (0..s.fh)
                .filter(|&fh| {
                    let iy = oy as isize + fh as isize - s.ph as isize;
                    iy >= 0 && (iy as usize) < s.ih
                })
                .count()
        };

        // GEMM-remainder geometry: patch rows are full-K im2col gathers
        // (zeros under padding) against the plan-time packed filter. The
        // patch buffer is checked out once per row range, not per row.
        let gemm_k = s.fh * s.fw * s.ic;
        let gemm_patch_max = self
            .plan
            .segments
            .iter()
            .zip(&self.seg_kernels)
            .filter_map(|(seg, k)| k.is_none().then_some(seg.len))
            .max()
            .unwrap_or(0)
            * gemm_k;

        let parts = par::SliceParts::new(y.as_mut_slice(), row_elems);
        // Per-row cost model in abstract vector-op units, aware of the
        // dispatched lane width: the outer-product FMA work vectorises along
        // OC at `vw` lanes while the im2col gather stays per-channel scalar
        // loads, so widening the ISA shrinks the FMA term relative to the
        // gather term and shifts how much border rows (fewer in-bounds
        // filter rows) are discounted. The fixed term covers the
        // output transform + epilogue, which run once per row regardless of
        // how many filter rows are in bounds.
        let vw = simd::kernels().lane_width;
        let fma_per_fh = (s.ic * s.oc).div_ceil(vw) as u64;
        let gather_per_fh = s.ic as u64;
        let fixed = s.oc.div_ceil(vw) as u64 + 1;
        let row_weight = move |row: usize| in_bounds_fh(row % oh) as u64 * (fma_per_fh + gather_per_fh) + fixed;
        // Cost-aware row ranges (~equal total cost per piece) instead of one
        // task per row: boundary rows stop dragging the tail, and the
        // scratch borrow is amortised over the whole range.
        par::global().run_chunked_weighted(s.n * oh, &row_weight, &|range| {
            SCRATCH.with(|gamma_scratch| {
                let mut gamma_scratch = gamma_scratch.borrow_mut();
                let mut gemm_patch = (gemm_patch_max > 0).then(|| scratch.checkout(gemm_patch_max));
                for row in range {
                    let out_row = parts.take(row);
                    let b = row / oh;
                    let oy = row % oh;
                    // Row plan: one entry per in-bounds filter row (plane =
                    // fh); rows falling outside the image are absent
                    // (implicit zero padding). Stack-allocated: FH ≤ 16
                    // always holds for the 2-D path.
                    let mut rows_buf = [(0usize, 0usize); 16];
                    let mut row_count = 0usize;
                    for fh in 0..s.fh {
                        let iy = oy as isize + fh as isize - s.ph as isize;
                        if iy >= 0 && (iy as usize) < s.ih {
                            rows_buf[row_count] = (iy as usize * s.iw * s.ic, fh);
                            row_count += 1;
                        }
                    }
                    let job = RowJob {
                        x: &xs[b * img_elems..(b + 1) * img_elems],
                        rows: &rows_buf[..row_count],
                        iw: s.iw,
                        ic: s.ic,
                        pw: s.pw,
                        ow,
                        oc: s.oc,
                    };
                    for (seg, k_idx) in self.plan.segments.iter().zip(&self.seg_kernels) {
                        match k_idx {
                            Some(k) => {
                                let (spec, kernel, tw) = &self.kernels[*k];
                                kernel.run_segment(&job, tw, seg.start, seg.len / spec.n, out_row, &mut gamma_scratch);
                            }
                            None => {
                                let pb = self.w_packed.as_ref().expect("packed remainder filter was built");
                                let _g = obs::span(obs::Stage::GemmRemainder);
                                obs::add(obs::Counter::GemmRemainderCols, seg.len as u64);
                                // Gather the seg.len × K patch (zeros under
                                // padding; K ordered (fh, fw, ic) to match
                                // the HWIO flattening) and run it against
                                // the plan-time packed filter.
                                let buf = gemm_patch.as_mut().expect("gemm patch buffer was checked out");
                                let patch = &mut buf[..seg.len * gemm_k];
                                patch.fill(0.0);
                                for (i_ox, p_row) in patch.chunks_exact_mut(gemm_k).enumerate() {
                                    let ox = seg.start + i_ox;
                                    for &(x_off, plane) in job.rows {
                                        let x_row = &job.x[x_off..x_off + s.iw * s.ic];
                                        for fx in 0..s.fw {
                                            let px = ox as isize + fx as isize - s.pw as isize;
                                            if px < 0 || px >= s.iw as isize {
                                                continue;
                                            }
                                            let src = &x_row[px as usize * s.ic..(px as usize + 1) * s.ic];
                                            let d0 = (plane * s.fw + fx) * s.ic;
                                            p_row[d0..d0 + s.ic].copy_from_slice(src);
                                        }
                                    }
                                }
                                let out_seg = &mut out_row[seg.start * s.oc..(seg.start + seg.len) * s.oc];
                                sgemm_prepacked(seg.len, patch, pb, out_seg, false, scratch);
                            }
                        }
                    }
                    let _e = (!matches!(epilogue, Epilogue::None)).then(|| obs::span(obs::Stage::Epilogue));
                    epilogue.apply(out_row, s.oc);
                }
                if let Some(buf) = gemm_patch {
                    scratch.give_back(buf);
                }
            });
        });
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwino_baselines::{direct_conv, direct_conv_f64_ref};
    use iwino_tensor::{max_mixed_error, rotate_filter_180};

    fn check_conv(s: &ConvShape, opts: &ConvOptions, seed: u64, tol: f64) {
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let want = direct_conv_f64_ref(&x, &w, s);
        let got = conv2d_opts(&x, &w, s, opts);
        let e = max_mixed_error(&got, &want);
        assert!(e < tol, "{s:?} {opts:?}: error {e}");
    }

    #[test]
    fn gamma8_6_3_exact_cover() {
        // OW = 24 divisible by 6: pure Γ8(6,3).
        check_conv(&ConvShape::square(2, 24, 8, 8, 3), &ConvOptions::default(), 60, 1e-4);
    }

    #[test]
    fn gamma8_6_3_with_boundary() {
        // OW = 23: Γ8(6,3) + Γ4(2,3) + GEMM.
        check_conv(&ConvShape::square(1, 23, 8, 8, 3), &ConvOptions::default(), 61, 1e-4);
    }

    #[test]
    fn all_filter_widths_2_to_9() {
        for r in 2..=9usize {
            let s = ConvShape::square(1, 20, 8, 8, r);
            // r ≥ 8 runs on Γ16 whose transform entries span ~10 orders of
            // magnitude; under sign-varying inputs the f32 mixed error grows
            // to ~1e-3 (the conditioning effect §6.2.2 describes).
            let tol = if r >= 8 { 1e-2 } else { 2e-4 };
            check_conv(&s, &ConvOptions::default(), 62 + r as u64, tol);
        }
    }

    #[test]
    fn ruse_variant_matches() {
        for r in [5usize, 6, 7] {
            let n = 9 - r;
            let opts = ConvOptions {
                force_kernels: Some(vec![GammaSpec::new(8, n, r, Variant::Ruse)]),
                ..Default::default()
            };
            check_conv(&ConvShape::square(1, 4 * n, 8, 8, r), &opts, 70 + r as u64, 2e-4);
        }
    }

    #[test]
    fn c64_variant_matches() {
        // Γ16(8,9) in f32 has percent-level worst-case error under
        // cancellation (κ ≈ 1e5 transform amplification), so this test uses
        // the paper's positive [1,2) distribution and additionally checks
        // the c64 variant agrees with the standard blocking bit-for-bit
        // (same summation order, different cache-block geometry).
        let s = ConvShape::square(1, 16, 64, 64, 9);
        let x = Tensor4::<f32>::random(s.x_dims(), 80, 1.0, 2.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 81, 1.0, 2.0);
        let want = direct_conv_f64_ref(&x, &w, &s);
        let std_opts = ConvOptions {
            prefer_alpha16: true,
            ..Default::default()
        };
        let c64_opts = ConvOptions {
            prefer_alpha16: true,
            allow_c64: true,
            ..Default::default()
        };
        let y_std = conv2d_opts(&x, &w, &s, &std_opts);
        let y_c64 = conv2d_opts(&x, &w, &s, &c64_opts);
        let stats = iwino_tensor::ErrorStats::between(&y_c64, &want);
        assert!(stats.mean < 1e-4, "{stats:?}");
        assert_eq!(y_std.as_slice(), y_c64.as_slice(), "c64 must be a pure blocking change");
    }

    #[test]
    fn alpha16_kernels() {
        for r in [7usize, 8, 9] {
            let opts = ConvOptions {
                prefer_alpha16: true,
                ..Default::default()
            };
            let s = ConvShape::square(1, 20, 8, 8, r);
            check_conv(&s, &opts, 90 + r as u64, 1e-2);
        }
    }

    #[test]
    fn channels_not_multiple_of_block() {
        // IC = 5, OC = 7: exercises ragged channel blocks.
        check_conv(&ConvShape::square(1, 12, 5, 7, 3), &ConvOptions::default(), 100, 1e-4);
    }

    #[test]
    fn zero_padding_variants() {
        // pw = 0 (valid convolution) and asymmetric-feeling sizes.
        check_conv(
            &ConvShape::unit(1, 10, 17, 4, 4, 3, 3, 0, 0),
            &ConvOptions::default(),
            101,
            1e-4,
        );
        check_conv(
            &ConvShape::unit(1, 10, 17, 4, 4, 5, 5, 0, 2),
            &ConvOptions::default(),
            102,
            2e-4,
        );
    }

    #[test]
    fn non_square_filters() {
        // FH ≠ FW: the 1-D decomposition only constrains FW (§4.2).
        check_conv(
            &ConvShape::unit(1, 12, 12, 4, 4, 5, 3, 2, 1),
            &ConvOptions::default(),
            103,
            1e-4,
        );
        check_conv(
            &ConvShape::unit(1, 12, 12, 4, 4, 2, 7, 0, 3),
            &ConvOptions::default(),
            104,
            2e-4,
        );
    }

    #[test]
    fn tiny_output_goes_through_gemm_only() {
        // OW = 1 < every tile size: pure GEMM path.
        let s = ConvShape::unit(1, 6, 1, 3, 2, 3, 3, 1, 1);
        check_conv(&s, &ConvOptions::default(), 105, 1e-4);
    }

    #[test]
    fn deconv_matches_conv_of_rotated_filter() {
        let s = ConvShape::square(2, 12, 4, 6, 3);
        let dy = Tensor4::<f32>::random(s.y_dims(), 110, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 111, -1.0, 1.0);
        let got = deconv2d(&dy, &w, &s);
        // Reference: materialised rotated filter + direct convolution.
        let bw = ConvShape::unit(s.n, s.oh(), s.ow(), s.oc, s.ic, 3, 3, 2 - s.ph, 2 - s.pw);
        let wr = rotate_filter_180(&w);
        let want = direct_conv(&dy, &wr, &bw);
        let e = max_mixed_error(&got, &want);
        assert!(e < 1e-4, "deconv error {e}");
        assert_eq!(got.dims(), s.x_dims());
    }

    #[test]
    fn deconv_all_widths() {
        for r in 2..=9usize {
            let s = ConvShape::square(1, 16, 4, 4, r);
            let dy = Tensor4::<f32>::random(s.y_dims(), 120 + r as u64, -1.0, 1.0);
            let w = Tensor4::<f32>::random(s.w_dims(), 130 + r as u64, -1.0, 1.0);
            let got = deconv2d(&dy, &w, &s);
            let bw = ConvShape::unit(s.n, s.oh(), s.ow(), s.oc, s.ic, r, r, r - 1 - s.ph, r - 1 - s.pw);
            let wr = rotate_filter_180(&w);
            let want = direct_conv(&dy, &wr, &bw);
            let e = max_mixed_error(&got, &want);
            let tol = if r >= 8 { 1e-2 } else { 2e-4 };
            assert!(e < tol, "r = {r}: deconv error {e}");
        }
    }

    /// ⟨conv(x), y⟩ = ⟨x, deconv(y)⟩ — conv and backward-data are adjoint.
    #[test]
    fn conv_deconv_adjointness() {
        let s = ConvShape::square(1, 10, 3, 5, 3);
        let x = Tensor4::<f32>::random(s.x_dims(), 140, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 141, -1.0, 1.0);
        let yr = Tensor4::<f32>::random(s.y_dims(), 142, -1.0, 1.0);
        let cx = conv2d(&x, &w, &s);
        let dy = deconv2d(&yr, &w, &s);
        let lhs: f64 = cx
            .as_slice()
            .iter()
            .zip(yr.as_slice())
            .map(|(&a, &b)| (a as f64) * b as f64)
            .sum();
        let rhs: f64 = x
            .as_slice()
            .iter()
            .zip(dy.as_slice())
            .map(|(&a, &b)| (a as f64) * b as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_shapes_route_through_indirect_gemm() {
        // Non-unit stride can't run the fused Γ path; conv2d must now
        // produce the convolution via the indirect GEMM instead of erroring.
        let s = ConvShape {
            sw: 2,
            ..ConvShape::square(1, 8, 2, 2, 3)
        };
        let x = Tensor4::<f32>::random(s.x_dims(), 710, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 711, -1.0, 1.0);
        let y = conv2d(&x, &w, &s);
        assert_eq!(y.dims(), s.y_dims());
        let want = iwino_baselines::direct_conv_f64_ref(&x, &w, &s);
        for (i, (&a, &b)) in y.as_slice().iter().zip(want.as_slice()).enumerate() {
            assert!((a as f64 - b).abs() < 1e-3, "idx {i}: {a} vs f64 direct {b}");
        }
        // The fused epilogue applies on the strided route too.
        let got = conv2d_fused(&x, &w, &s, &ConvOptions::default(), &Epilogue::Relu);
        for (&g, &p) in got.as_slice().iter().zip(y.as_slice()) {
            assert_eq!(g, p.max(0.0));
        }
        // Malformed strided requests still fail recoverably, not by panic.
        let bad = Tensor4::<f32>::zeros([1, 3, 3, 2]);
        let e = try_conv2d_opts(&bad, &w, &s, &ConvOptions::default()).unwrap_err();
        assert!(matches!(e, ConvError::ShapeMismatch { what: "input", .. }), "{e}");
    }

    #[test]
    fn fused_epilogue_matches_unfused() {
        let s = ConvShape::square(1, 13, 6, 5, 3);
        let x = Tensor4::<f32>::random(s.x_dims(), 500, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 501, -1.0, 1.0);
        let bias: Vec<f32> = (0..5).map(|i| i as f32 * 0.3 - 0.5).collect();
        let opts = ConvOptions::default();
        let plain = conv2d_opts(&x, &w, &s, &opts);

        // Bias only.
        let got = conv2d_fused(&x, &w, &s, &opts, &Epilogue::Bias(bias.clone()));
        for (px_g, px_p) in got.as_slice().chunks_exact(5).zip(plain.as_slice().chunks_exact(5)) {
            for o in 0..5 {
                assert!((px_g[o] - (px_p[o] + bias[o])).abs() < 1e-6);
            }
        }
        // ReLU.
        let got = conv2d_fused(&x, &w, &s, &opts, &Epilogue::Relu);
        for (&g, &p) in got.as_slice().iter().zip(plain.as_slice()) {
            assert_eq!(g, p.max(0.0));
        }
        // LeakyReLU(0.1).
        let got = conv2d_fused(&x, &w, &s, &opts, &Epilogue::LeakyRelu(0.1));
        for (&g, &p) in got.as_slice().iter().zip(plain.as_slice()) {
            let want = if p >= 0.0 { p } else { 0.1 * p };
            assert!((g - want).abs() < 1e-7);
        }
        // Bias + LeakyReLU.
        let got = conv2d_fused(&x, &w, &s, &opts, &Epilogue::BiasLeakyRelu(bias.clone(), 0.2));
        for (px_g, px_p) in got.as_slice().chunks_exact(5).zip(plain.as_slice().chunks_exact(5)) {
            for o in 0..5 {
                let t = px_p[o] + bias[o];
                let want = if t >= 0.0 { t } else { 0.2 * t };
                assert!((px_g[o] - want).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gamma4_kernels_as_primary() {
        // The α = 4 family the paper's Figure 3 lists: Γ4(3,2) and Γ4(2,3).
        for (n, r, variant) in [
            (3usize, 2usize, Variant::Standard),
            (2, 3, Variant::Standard),
            (2, 3, Variant::Ruse),
        ] {
            let opts = ConvOptions {
                force_kernels: Some(vec![GammaSpec::new(4, n, r, variant)]),
                ..Default::default()
            };
            check_conv(
                &ConvShape::square(1, 3 * n + 1, 8, 8, r),
                &opts,
                300 + (n * 10 + r) as u64,
                1e-4,
            );
        }
    }

    #[test]
    fn filter_widths_beyond_nine() {
        // §4.2: "Im2col-Winograd can deal with 2-15 filter widths". Widths
        // 10–15 ride Γ16(17−r, r); f32 conditioning is rough out here, so the
        // test uses the positive [1,2) distribution and a mean-error budget.
        for r in [10usize, 12, 15] {
            let n = 17 - r;
            let opts = ConvOptions {
                force_kernels: Some(vec![GammaSpec::new(16, n, r, Variant::Standard)]),
                ..Default::default()
            };
            let s = ConvShape::square(1, 2 * n.max(r), 4, 4, r);
            let x = Tensor4::<f32>::random(s.x_dims(), 400 + r as u64, 1.0, 2.0);
            let w = Tensor4::<f32>::random(s.w_dims(), 410 + r as u64, 1.0, 2.0);
            let want = direct_conv_f64_ref(&x, &w, &s);
            let got = conv2d_opts(&x, &w, &s, &opts);
            let stats = iwino_tensor::ErrorStats::between(&got, &want);
            assert!(stats.mean < 1e-3, "r = {r}: {stats:?}");
        }
    }

    #[test]
    fn auto_options_heuristics() {
        let small = ConvShape::square(1, 16, 32, 48, 3);
        let o = auto_options(&small);
        assert!(!o.prefer_alpha16);
        assert!(!o.allow_c64);
        let wide = ConvShape::square(1, 16, 64, 128, 7);
        let o = auto_options(&wide);
        assert!(o.prefer_alpha16);
        assert!(o.allow_c64);
    }

    #[test]
    fn accuracy_on_paper_distribution() {
        // §6.2.1 setup: uniform [1, 2), OW a multiple of n. Γ8 should land
        // around 1e-7 mean relative error (Table 3).
        let s = ConvShape::square(1, 24, 32, 32, 3);
        let x = Tensor4::<f32>::random(s.x_dims(), 150, 1.0, 2.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 151, 1.0, 2.0);
        let want = direct_conv_f64_ref(&x, &w, &s);
        let got = conv2d(&x, &w, &s);
        let stats = iwino_tensor::ErrorStats::between(&got, &want);
        assert!(stats.mean < 5e-6, "mean relative error too large: {stats:?}");
    }
}

#[cfg(test)]
mod accuracy {
    use super::*;
    use iwino_baselines::direct_conv_f64_ref;

    #[test]
    fn gamma16_accuracy_paper_distribution() {
        // Γ16(8,9), uniform [1,2): paper Table 3 reports ~1e-5 mean rel err.
        let s = ConvShape::square(1, 16, 32, 32, 9);
        let x = Tensor4::<f32>::random(s.x_dims(), 300, 1.0, 2.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 301, 1.0, 2.0);
        let want = direct_conv_f64_ref(&x, &w, &s);
        let opts = ConvOptions {
            prefer_alpha16: true,
            ..Default::default()
        };
        let got = conv2d_opts(&x, &w, &s, &opts);
        let stats = iwino_tensor::ErrorStats::between(&got, &want);
        eprintln!("gamma16 stats: {stats:?}");
        assert!(stats.mean < 1e-4, "{stats:?}");
    }
}
