//! **Im2col-Winograd** — an efficient and flexible fused-Winograd
//! convolution for NHWC tensors (Rust reproduction of the ICPP '24 paper).
//!
//! The algorithm `Γα(n, r)` decomposes a 2-D convolution into `FH`
//! independent 1-D convolutions along the width axis, runs 1-D Winograd
//! `F(n, r)` on each, and accumulates the element-wise products *in the
//! Winograd (transformed) domain* across both the filter-height axis and the
//! input channels. One output transform per `n`-wide tile then produces the
//! final NHWC outputs:
//!
//! ```text
//! Y[·, oy, ox0..ox0+n, oc] = Aᵀ · Σ_{fh, ic} (G·W[oc, fh, ·, ic]) ⊙ (Dᵀ·X[·, oy+fh−ph, ·, ic])
//! ```
//!
//! Compared with 2-D Winograd `F(n×n, r×r)` this needs `α = n + r − 1`
//! states per tile instead of `α²`, restricts only the filter *width*, and
//! keeps every data access contiguous along the channel axis — which is why
//! it suits NHWC (§3, §4.2).
//!
//! # What this crate provides
//!
//! * [`conv2d`] / [`conv2d_opts`] — unit-stride 2-D convolution, filter
//!   widths 2–9 (any `r ≤ 15` in principle), arbitrary padding;
//! * [`deconv2d`] / [`deconv2d_opts`] — the backward-data pass, with the
//!   180° filter rotation fused into the filter transform (§5.1);
//! * [`filter_grad`] — the backward-filter pass used for CNN training;
//! * [`plan`] — the §5.5 boundary treatment: `OW` is split into segments,
//!   each covered exactly by a kernel, fastest kernel first, GEMM-style
//!   direct convolution for the remainder (Figure 7);
//! * [`kernel`] — the cache-blocked `Γα(n, r)` row kernel with the paper's
//!   `BN×BM×BK` blocking and the `ruse`/`c64` variants (§5.4, §5.6);
//! * [`filter`] — fused filter transforms (forward, and rotated for deconv).
//!
//! # CPU adaptation
//!
//! The paper's kernels run on CUDA; this crate reproduces the identical
//! block workflow on CPU threads (one parallel task per `N×OH` output row —
//! the same task decomposition the paper assigns to thread blocks, §5.1).
//! Shared-memory tile buffers become per-task scratch ([`kernel::Scratch`]),
//! and the filter tiles — which the GPU kernels re-transform per block into
//! SMEM because they stay resident in the texture cache — are transformed
//! once per call into a `FH×α×IC×OC` buffer (the CPU cache hierarchy plays
//! the role of SMEM; the *input* side stays fully fused with no workspace,
//! which is the component that scales with the feature maps). See DESIGN.md.

#![forbid(unsafe_code)]

pub mod conv;
pub mod conv1d;
pub mod error;
pub mod filter;
pub mod grad;
pub mod kernel;
pub mod nd;
pub mod plan;
pub mod precision;
pub mod workspace;

pub use conv::{
    auto_options, conv2d, conv2d_fused, conv2d_opts, deconv2d, deconv2d_opts, try_conv2d_fused, try_conv2d_opts,
    try_deconv2d_opts, ConvOptions, Epilogue, PreparedConv,
};
pub use conv1d::{conv1d, conv1d_opts};
pub use error::ConvError;
pub use filter::TransformedFilter;
pub use grad::filter_grad;
pub use kernel::{GammaKernel, Variant};
pub use nd::{conv3d, conv3d_opts};
pub use plan::{
    default_kernel_prefs, winograd2d_loads_per_output, GammaSpec, KernelChoice, Segment, SegmentPlan, BK, LANE,
};
pub use precision::{conv2d_f64, error_decomposition, ErrorDecomposition};
pub use workspace::{workspace_bytes, workspace_ratio, AlgorithmClass};
