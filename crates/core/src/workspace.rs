//! Workspace accounting — the memory-efficiency claim.
//!
//! §2/§3: "Fused-Winograd integrates the last 3 stages into 1 kernel, while
//! the Non-Fused uses multiple kernels and requires a much larger workspace
//! to store intermediate variables … fused-Winograd needs a much smaller
//! workspace in global memory than the non-fused, which is beneficial for
//! large models." §6.1.1 picks the benchmark set by exactly this criterion,
//! and Tables 4/5's GPU-memory columns show the training-time consequence.
//!
//! This module quantifies the workspace (bytes of global memory beyond
//! inputs + outputs) each algorithm class needs for a given shape, so the
//! claim is checkable instead of rhetorical.

use iwino_tensor::ConvShape;

/// Workspace class of a convolution algorithm.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlgorithmClass {
    /// This library / the paper's kernels: all stages fused; the only
    /// auxiliary buffer is the transformed filter bank.
    ImcolWinogradFused { alpha: usize },
    /// Non-fused 1-D Winograd: transformed input tiles for the whole ifms
    /// must be materialised (`α/n` expansion), plus transformed filters,
    /// plus the Winograd-domain product buffer.
    Winograd1dNonFused { alpha: usize, n: usize },
    /// Non-fused 2-D Winograd: `(α/n)²` expansion of the ifms.
    Winograd2dNonFused { alpha: usize, n: usize },
    /// Explicit im2col + GEMM: the full `GM×GK` patch matrix
    /// (`GM = N·OH·OW`, `GK = IC·FH·FW`, §4.1's Stage-1 matrices).
    ExplicitIm2colGemm,
    /// Implicit-precomp GEMM: only the precomputed index maps.
    ImplicitPrecompGemm,
    /// Naive direct convolution: no auxiliary memory at all.
    Direct,
    /// FFT convolution: frequency-domain ifms, filter bank, and product
    /// accumulator, each padded to the `IH×IW` transform size.
    Fft,
}

/// Bytes of auxiliary global memory the algorithm needs for `shape` (f32).
pub fn workspace_bytes(class: AlgorithmClass, s: &ConvShape) -> usize {
    let f32s = 4usize;
    let ifms = s.n * s.ih * s.iw * s.ic;
    let filter_bank = |alpha: usize| s.fh * alpha * s.ic * s.oc * f32s;
    match class {
        AlgorithmClass::ImcolWinogradFused { alpha } => filter_bank(alpha),
        AlgorithmClass::Winograd1dNonFused { alpha, n } => {
            // Transformed input tiles: every n input columns expand to α.
            let tx = ifms * alpha / n * f32s;
            // Winograd-domain products for the ofms: α states per n outputs.
            let prod = s.n * s.oh() * s.ow() * s.oc * alpha / n * f32s;
            tx + prod + filter_bank(alpha)
        }
        AlgorithmClass::Winograd2dNonFused { alpha, n } => {
            let exp = (alpha * alpha) / (n * n);
            let tx = ifms * exp * f32s;
            let prod = s.n * s.oh() * s.ow() * s.oc * exp * f32s;
            let filters = alpha * alpha * s.ic * s.oc * f32s;
            tx + prod + filters
        }
        AlgorithmClass::ExplicitIm2colGemm => s.n * s.oh() * s.ow() * s.ic * s.fh * s.fw * f32s,
        AlgorithmClass::ImplicitPrecompGemm => {
            // Index maps: one i32 per (oy, fh) and (ox, fw) pair.
            (s.oh() * s.fh + s.ow() * s.fw) * 4
        }
        AlgorithmClass::Direct => 0,
        AlgorithmClass::Fft => {
            // Complex (2×f32) IH×IW-padded planes: transformed ifms, the
            // frequency-domain filter bank, and one product accumulator
            // plane per worker (counted once — it is shape-, not
            // batch-scaled).
            let plane = s.ih * s.iw * 2 * f32s;
            s.n * s.ic * plane + s.oc * s.ic * plane + s.oc * plane
        }
    }
}

/// Workspace relative to the ifms size (a scale-free comparison).
pub fn workspace_ratio(class: AlgorithmClass, s: &ConvShape) -> f64 {
    let ifms_bytes = (s.n * s.ih * s.iw * s.ic * 4) as f64;
    workspace_bytes(class, s) as f64 / ifms_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg_layer() -> ConvShape {
        // A mid-VGG layer: 128×28×28×256, 3×3.
        ConvShape::square(128, 28, 256, 256, 3)
    }

    #[test]
    fn fused_beats_non_fused_by_orders() {
        let s = vgg_layer();
        let fused = workspace_bytes(AlgorithmClass::ImcolWinogradFused { alpha: 8 }, &s);
        let nf1 = workspace_bytes(AlgorithmClass::Winograd1dNonFused { alpha: 8, n: 6 }, &s);
        let nf2 = workspace_bytes(AlgorithmClass::Winograd2dNonFused { alpha: 4, n: 2 }, &s);
        assert!(nf1 > 10 * fused, "1D non-fused {nf1} vs fused {fused}");
        assert!(nf2 > 10 * fused, "2D non-fused {nf2} vs fused {fused}");
    }

    #[test]
    fn fused_workspace_does_not_scale_with_batch() {
        // The transformed filter bank is batch-independent — the property
        // that lets fused kernels train "large models" (§3).
        let small = ConvShape::square(1, 28, 256, 256, 3);
        let big = ConvShape::square(256, 28, 256, 256, 3);
        let a = workspace_bytes(AlgorithmClass::ImcolWinogradFused { alpha: 8 }, &small);
        let b = workspace_bytes(AlgorithmClass::ImcolWinogradFused { alpha: 8 }, &big);
        assert_eq!(a, b);
        // Whereas the non-fused workspace scales linearly with the batch.
        let na = workspace_bytes(AlgorithmClass::Winograd1dNonFused { alpha: 8, n: 6 }, &small);
        let nb = workspace_bytes(AlgorithmClass::Winograd1dNonFused { alpha: 8, n: 6 }, &big);
        assert!(nb > 50 * na);
    }

    #[test]
    fn one_d_expansion_is_smaller_than_two_d() {
        // α/n = 8/6 ≈ 1.33× vs (α/n)² = (4/2)² = 4× for the same Φ = 2.25:
        // the §4.2 space-complexity advantage in workspace terms.
        let s = vgg_layer();
        let r1 = workspace_ratio(AlgorithmClass::Winograd1dNonFused { alpha: 8, n: 6 }, &s);
        let r2 = workspace_ratio(AlgorithmClass::Winograd2dNonFused { alpha: 4, n: 2 }, &s);
        assert!(r1 < r2, "1D ratio {r1:.2} vs 2D ratio {r2:.2}");
    }

    #[test]
    fn explicit_im2col_blows_up_with_filter_area() {
        let s3 = vgg_layer();
        let s9 = ConvShape::square(128, 28, 256, 256, 9);
        let w3 = workspace_bytes(AlgorithmClass::ExplicitIm2colGemm, &s3);
        let w9 = workspace_bytes(AlgorithmClass::ExplicitIm2colGemm, &s9);
        assert_eq!(w9 / w3, 81 / 9); // FH·FW scaling
                                     // Both dwarf the ifms.
        assert!(workspace_ratio(AlgorithmClass::ExplicitIm2colGemm, &s3) > 8.0);
    }

    #[test]
    fn implicit_gemm_workspace_is_negligible() {
        let s = vgg_layer();
        let r = workspace_ratio(AlgorithmClass::ImplicitPrecompGemm, &s);
        assert!(r < 1e-4, "{r}");
    }
}
