//! Precision study: an f64 execution of the Im2col-Winograd algorithm.
//!
//! §6.2.2 attributes `Γ16`'s ~1e-5 relative error to the *datatype*, not
//! the algorithm: "With the increase of α, the items in transform matrices
//! of F(n,r) exhibit a larger disparity in their magnitudes. Such disparity
//! can negatively impact accuracy, when it surpasses the precision of a
//! specific datatype."
//!
//! [`conv2d_f64`] runs the identical decomposition — 1-D Winograd along the
//! width, Winograd-domain accumulation over `(fh, ic)` — in f64, and
//! [`error_decomposition`] splits the observed f32 error into an
//! *algorithmic* component (f64-Winograd vs f64-direct: ≈ machine epsilon,
//! the algorithm is exact) and a *datatype* component (f32-Winograd vs
//! f64-Winograd: the Table 3 numbers). This is the cleanest evidence the
//! reproduction can give that the paper's accuracy analysis is right.

use crate::conv::{conv2d_opts, ConvOptions};
use crate::plan::GammaSpec;
use iwino_tensor::{ConvShape, ErrorStats, Tensor4};
use iwino_transforms::WinogradTransform;

/// Im2col-Winograd convolution executed in f64 (reference-grade, unblocked;
/// for analysis, not speed). Uses a single `F(n, r)` across the width with
/// per-column direct fallback for the remainder.
pub fn conv2d_f64(x: &Tensor4<f64>, w: &Tensor4<f64>, shape: &ConvShape, spec: GammaSpec) -> Tensor4<f64> {
    let s = *shape;
    assert!(s.is_unit_stride());
    assert_eq!(x.dims(), s.x_dims());
    assert_eq!(w.dims(), s.w_dims());
    let (oh, ow) = (s.oh(), s.ow());
    let t = WinogradTransform::generate(spec.n, spec.r);
    assert_eq!(spec.r, s.fw, "kernel width must match filter width");
    let alpha = t.alpha;
    let n = t.n;
    let g = t.g.to_f64();
    let dt = t.dt.to_f64();
    let at = t.at.to_f64();

    // Transformed filters: TW[fh][s][ic][oc].
    let mut tw = vec![0.0f64; s.fh * alpha * s.ic * s.oc];
    for o in 0..s.oc {
        for fh in 0..s.fh {
            for st in 0..alpha {
                for i in 0..s.ic {
                    let mut acc = 0.0;
                    for fx in 0..s.fw {
                        acc += g[st * s.fw + fx] * w.at(o, fh, fx, i);
                    }
                    tw[((fh * alpha + st) * s.ic + i) * s.oc + o] = acc;
                }
            }
        }
    }

    let tiles = ow / n;
    let mut y = Tensor4::<f64>::zeros(s.y_dims());
    let mut xt = vec![0.0f64; alpha];
    let mut tx = vec![0.0f64; alpha];
    let mut acc = vec![0.0f64; alpha];
    for b in 0..s.n {
        for oy in 0..oh {
            for o in 0..s.oc {
                // Winograd-covered tiles.
                for tdx in 0..tiles {
                    acc.fill(0.0);
                    for fh in 0..s.fh {
                        let iy = oy as isize + fh as isize - s.ph as isize;
                        if iy < 0 || iy >= s.ih as isize {
                            continue;
                        }
                        for i in 0..s.ic {
                            for (k, slot) in xt.iter_mut().enumerate() {
                                let px = (tdx * n + k) as isize - s.pw as isize;
                                *slot = if px >= 0 && (px as usize) < s.iw {
                                    x.at(b, iy as usize, px as usize, i)
                                } else {
                                    0.0
                                };
                            }
                            for st in 0..alpha {
                                let mut v = 0.0;
                                for k in 0..alpha {
                                    v += dt[st * alpha + k] * xt[k];
                                }
                                tx[st] = v;
                            }
                            for st in 0..alpha {
                                acc[st] += tx[st] * tw[((fh * alpha + st) * s.ic + i) * s.oc + o];
                            }
                        }
                    }
                    for j in 0..n {
                        let mut v = 0.0;
                        for st in 0..alpha {
                            v += at[j * alpha + st] * acc[st];
                        }
                        *y.at_mut(b, oy, tdx * n + j, o) = v;
                    }
                }
                // Direct remainder columns.
                for ox in tiles * n..ow {
                    let mut v = 0.0;
                    for fh in 0..s.fh {
                        let iy = oy as isize + fh as isize - s.ph as isize;
                        if iy < 0 || iy >= s.ih as isize {
                            continue;
                        }
                        for fx in 0..s.fw {
                            let px = ox as isize + fx as isize - s.pw as isize;
                            if px < 0 || px >= s.iw as isize {
                                continue;
                            }
                            for i in 0..s.ic {
                                v += x.at(b, iy as usize, px as usize, i) * w.at(o, fh, fx, i);
                            }
                        }
                    }
                    *y.at_mut(b, oy, ox, o) = v;
                }
            }
        }
    }
    y
}

/// The two error components of the f32 kernel on one shape.
#[derive(Clone, Copy, Debug)]
pub struct ErrorDecomposition {
    /// f64-Winograd vs f64-direct: the algorithm's own error (≈ ulps).
    pub algorithmic: f64,
    /// f32-Winograd vs f64-Winograd: the datatype-induced error.
    pub datatype: f64,
    /// f32-Winograd vs f64-direct: the total (what Table 3 reports).
    pub total: f64,
}

/// Decompose the error of `spec` on a uniform-[1,2) workload of `shape`.
pub fn error_decomposition(shape: &ConvShape, spec: GammaSpec, seed: u64) -> ErrorDecomposition {
    let x32 = Tensor4::<f32>::random(shape.x_dims(), seed, 1.0, 2.0);
    let w32 = Tensor4::<f32>::random(shape.w_dims(), seed + 1, 1.0, 2.0);
    let x64 = x32.cast::<f64>();
    let w64 = w32.cast::<f64>();

    let direct64 = {
        // Direct f64 convolution (inline to avoid a baselines dependency).
        let s = *shape;
        let mut y = Tensor4::<f64>::zeros(s.y_dims());
        for b in 0..s.n {
            for oy in 0..s.oh() {
                for ox in 0..s.ow() {
                    for o in 0..s.oc {
                        let mut acc = 0.0f64;
                        for fh in 0..s.fh {
                            let iy = oy as isize + fh as isize - s.ph as isize;
                            if iy < 0 || iy >= s.ih as isize {
                                continue;
                            }
                            for fx in 0..s.fw {
                                let px = ox as isize + fx as isize - s.pw as isize;
                                if px < 0 || px >= s.iw as isize {
                                    continue;
                                }
                                for i in 0..s.ic {
                                    acc += x64.at(b, iy as usize, px as usize, i) * w64.at(o, fh, fx, i);
                                }
                            }
                        }
                        *y.at_mut(b, oy, ox, o) = acc;
                    }
                }
            }
        }
        y
    };
    let wino64 = conv2d_f64(&x64, &w64, shape, spec);
    let opts = ConvOptions {
        force_kernels: Some(vec![spec]),
        ..Default::default()
    };
    let wino32 = conv2d_opts(&x32, &w32, shape, &opts);

    ErrorDecomposition {
        algorithmic: ErrorStats::between(&wino64, &direct64).mean,
        datatype: ErrorStats::between(&wino32, &wino64).mean,
        total: ErrorStats::between(&wino32, &direct64).mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Variant;

    #[test]
    fn f64_winograd_is_algorithmically_exact() {
        // Even Γ16's wild transform magnitudes are fine in f64: the
        // algorithm error sits ~7 orders below the f32 datatype error.
        for (alpha, n, r) in [(8usize, 6usize, 3usize), (16, 8, 9)] {
            let spec = GammaSpec::new(alpha, n, r, Variant::Standard);
            let shape = ConvShape::square(1, 2 * n, 8, 8, r);
            let d = error_decomposition(&shape, spec, 600 + alpha as u64);
            assert!(
                d.algorithmic < 1e-11,
                "Γ{alpha}({n},{r}): algo err {:.2e}",
                d.algorithmic
            );
            assert!(d.datatype > 100.0 * d.algorithmic, "{d:?}");
            assert!(
                (d.total - d.datatype).abs() < 0.5 * d.total.max(1e-12),
                "total ≈ datatype component: {d:?}"
            );
        }
    }

    #[test]
    fn datatype_error_grows_with_alpha() {
        // The §6.2.2 mechanism: same workload, bigger α ⟹ bigger f32 error.
        let d8 = error_decomposition(
            &ConvShape::square(1, 12, 8, 8, 3),
            GammaSpec::new(8, 6, 3, Variant::Standard),
            700,
        );
        let d16 = error_decomposition(
            &ConvShape::square(1, 16, 8, 8, 9),
            GammaSpec::new(16, 8, 9, Variant::Standard),
            701,
        );
        assert!(d16.datatype > 3.0 * d8.datatype, "Γ16 {d16:?} vs Γ8 {d8:?}");
    }

    #[test]
    fn f64_path_handles_boundary_remainder() {
        let spec = GammaSpec::new(8, 6, 3, Variant::Standard);
        // OW = 13: 2 tiles + 1 remainder column via the direct path.
        let shape = ConvShape::square(1, 13, 4, 4, 3);
        let x = Tensor4::<f64>::random(shape.x_dims(), 710, -1.0, 1.0);
        let w = Tensor4::<f64>::random(shape.w_dims(), 711, -1.0, 1.0);
        let y = conv2d_f64(&x, &w, &shape, spec);
        assert_eq!(y.dims(), shape.y_dims());
        // Spot-check one boundary column against a manual sum.
        let (b, oy, ox, o) = (0usize, 5usize, 12usize, 2usize);
        let mut want = 0.0f64;
        for fh in 0..3usize {
            let iy = oy + fh;
            let iy = iy as isize - 1;
            if !(0..13).contains(&iy) {
                continue;
            }
            for fx in 0..3usize {
                let px = ox as isize + fx as isize - 1;
                if !(0..13).contains(&px) {
                    continue;
                }
                for i in 0..4 {
                    want += x.at(b, iy as usize, px as usize, i) * w.at(o, fh, fx, i);
                }
            }
        }
        assert!((y.at(b, oy, ox, o) - want).abs() < 1e-12);
    }
}
