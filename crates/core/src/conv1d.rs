//! 1-D convolution — the `Γα(n, r)` algorithm in its native habitat.
//!
//! A 1-D convolution is the `FH = 1` special case of the 2-D path, so this
//! module is a thin, allocation-free-as-possible wrapper that exposes the
//! natural signal-processing API (`[batch, width, channels]`).

use crate::conv::{conv2d_opts, ConvOptions};
use iwino_tensor::{ConvShape, Tensor4};

/// Unit-stride 1-D convolution.
///
/// * `x`: input, `N×W×C` packed as a `Tensor4` of shape `[n, 1, w, c]`;
/// * `w`: filters, `OC×R×IC` packed as `[oc, 1, r, ic]`;
/// * `pad`: zero padding on both ends of the width axis.
pub fn conv1d(x: &Tensor4<f32>, w: &Tensor4<f32>, pad: usize) -> Tensor4<f32> {
    conv1d_opts(x, w, pad, &ConvOptions::default())
}

/// [`conv1d`] with explicit kernel-selection options.
pub fn conv1d_opts(x: &Tensor4<f32>, w: &Tensor4<f32>, pad: usize, opts: &ConvOptions) -> Tensor4<f32> {
    let [n, one_x, iw, ic] = x.dims();
    let [oc, one_w, r, wic] = w.dims();
    assert_eq!(one_x, 1, "conv1d input must be [n, 1, w, c]");
    assert_eq!(one_w, 1, "conv1d filter must be [oc, 1, r, ic]");
    assert_eq!(ic, wic, "channel mismatch");
    let shape = ConvShape::unit(n, 1, iw, ic, oc, 1, r, 0, pad);
    conv2d_opts(x, w, &shape, opts)
}

/// Helper: pack a flat `N×W×C` buffer into the `Tensor4` the 1-D API uses.
pub fn pack_1d(n: usize, w: usize, c: usize, data: Vec<f32>) -> Tensor4<f32> {
    Tensor4::from_vec([n, 1, w, c], data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use iwino_baselines::direct_conv;
    use iwino_tensor::max_mixed_error;

    #[test]
    fn matches_direct_correlation() {
        // Single channel: plain sliding dot product.
        let x = pack_1d(1, 8, 1, (1..=8).map(|v| v as f32).collect());
        let w = Tensor4::from_vec([1, 1, 3, 1], vec![1.0, 10.0, 100.0]);
        let y = conv1d(&x, &w, 0);
        assert_eq!(y.dims(), [1, 1, 6, 1]);
        // y_i = x_i + 10 x_{i+1} + 100 x_{i+2} (to f32 Winograd rounding).
        assert!((y.at(0, 0, 0, 0) - (1.0 + 20.0 + 300.0)).abs() < 1e-3);
        assert!((y.at(0, 0, 5, 0) - (6.0 + 70.0 + 800.0)).abs() < 1e-3);
    }

    #[test]
    fn multi_channel_against_direct() {
        for r in 2..=9usize {
            let (n, iw, ic, oc) = (2usize, 30usize, 6usize, 5usize);
            let x = Tensor4::<f32>::random([n, 1, iw, ic], 60 + r as u64, -1.0, 1.0);
            let w = Tensor4::<f32>::random([oc, 1, r, ic], 70 + r as u64, -1.0, 1.0);
            let pad = r / 2;
            let got = conv1d(&x, &w, pad);
            let shape = ConvShape::unit(n, 1, iw, ic, oc, 1, r, 0, pad);
            let want = direct_conv(&x, &w, &shape);
            let e = max_mixed_error(&got, &want);
            let tol = if r >= 8 { 1e-2 } else { 5e-4 };
            assert!(e < tol, "r = {r}: {e}");
        }
    }

    #[test]
    fn padding_grows_output() {
        let x = Tensor4::<f32>::random([1, 1, 10, 2], 80, -1.0, 1.0);
        let w = Tensor4::<f32>::random([3, 1, 3, 2], 81, -1.0, 1.0);
        assert_eq!(conv1d(&x, &w, 0).dims(), [1, 1, 8, 3]);
        assert_eq!(conv1d(&x, &w, 1).dims(), [1, 1, 10, 3]);
        assert_eq!(conv1d(&x, &w, 2).dims(), [1, 1, 12, 3]);
    }
}
