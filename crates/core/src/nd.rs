//! The ND extension (§4.2): 3-D Im2col-Winograd convolution.
//!
//! "Im2col-Winograd can be applied to ND convolution, by expanding Stage1
//! Im2col to ND, while remaining Stage2 unchanged." Concretely: a 3-D
//! convolution decomposes into `FD × FH` 1-D convolutions along the width
//! axis, and the element-wise products accumulate in the Winograd domain
//! over `(fd, fh, ic)` before the single per-tile output transform. The
//! same [`crate::kernel::GammaKernel`] executes Stage 2 — the only new code
//! is the row plan (ND im2col index mapping) and the 3-D filter transform.
//!
//! 2-D Winograd cannot scale here at all: `F(n×n×n, r×r×r)` would need `α³`
//! states (4096 for α = 16).

use crate::filter::{filter_hwio3d, TransformedFilter};
use crate::kernel::{cached_kernel, direct_row_segment, GammaKernel, RowJob, Scratch};
use crate::plan::{KernelChoice, SegmentPlan};
use crate::ConvOptions;
use iwino_parallel as par;
use iwino_tensor::{Conv3dShape, Tensor5};
use std::cell::RefCell;
use std::sync::Arc;

/// Unit-stride 3-D convolution: `x` is `N×ID×IH×IW×IC` NDHWC, `w` is
/// `OC×FD×FH×FW×IC`; returns `N×OD×OH×OW×OC`.
pub fn conv3d(x: &Tensor5<f32>, w: &Tensor5<f32>, shape: &Conv3dShape) -> Tensor5<f32> {
    conv3d_opts(x, w, shape, &ConvOptions::default())
}

/// [`conv3d`] with explicit kernel-selection options.
pub fn conv3d_opts(x: &Tensor5<f32>, w: &Tensor5<f32>, shape: &Conv3dShape, opts: &ConvOptions) -> Tensor5<f32> {
    let s = *shape;
    assert_eq!(x.dims(), s.x_dims(), "input dims mismatch");
    assert_eq!(w.dims(), s.w_dims(), "filter dims mismatch");
    let (od, oh, ow) = (s.od(), s.oh(), s.ow());

    let plan = plan_for_3d(opts, ow, s.fw, s.oc);
    let mut kernels: Vec<(crate::plan::GammaSpec, Arc<GammaKernel>, TransformedFilter)> = Vec::new();
    for spec in plan.gamma_specs() {
        let kernel = cached_kernel(spec.alpha, spec.n, spec.r, spec.variant);
        let t = kernel.transform();
        let tw = TransformedFilter::forward3d(w, &t);
        kernels.push((spec, kernel, tw));
    }
    let needs_direct = plan.segments.iter().any(|g| g.kernel == KernelChoice::Gemm);
    let w_direct = needs_direct.then(|| filter_hwio3d(w));

    let mut y = Tensor5::<f32>::zeros(s.y_dims());
    let xs = x.as_slice();
    let row_elems = ow * s.oc;
    let vol_elems = s.id * s.ih * s.iw * s.ic;

    thread_local! {
        static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
    }

    let parts = par::SliceParts::new(y.as_mut_slice(), row_elems);
    par::parallel_for(s.n * od * oh, &|row| {
        let out_row = parts.take(row);
        let b = row / (od * oh);
        let oz = (row / oh) % od;
        let oy = row % oh;
        // ND row plan: one entry per in-bounds (fd, fh), plane = fd·FH + fh.
        let mut rows: Vec<(usize, usize)> = Vec::with_capacity(s.fd * s.fh);
        for fd in 0..s.fd {
            let iz = oz as isize + fd as isize - s.pd as isize;
            if iz < 0 || iz >= s.id as isize {
                continue;
            }
            for fh in 0..s.fh {
                let iy = oy as isize + fh as isize - s.ph as isize;
                if iy < 0 || iy >= s.ih as isize {
                    continue;
                }
                let offset = (iz as usize * s.ih + iy as usize) * s.iw * s.ic;
                rows.push((offset, fd * s.fh + fh));
            }
        }
        let job = RowJob {
            x: &xs[b * vol_elems..(b + 1) * vol_elems],
            rows: &rows,
            iw: s.iw,
            ic: s.ic,
            pw: s.pw,
            ow,
            oc: s.oc,
        };
        SCRATCH.with(|scratch| {
            let mut scratch = scratch.borrow_mut();
            for seg in &plan.segments {
                match seg.kernel {
                    KernelChoice::Gamma(spec) => {
                        let (_, kernel, tw) = kernels
                            .iter()
                            .find(|(ks, _, _)| *ks == spec)
                            .expect("planned kernel was built");
                        kernel.run_segment(&job, tw, seg.start, seg.len / spec.n, out_row, &mut scratch);
                    }
                    KernelChoice::Gemm => {
                        let wd = w_direct.as_ref().expect("direct filter was built");
                        direct_row_segment(&job, wd, s.fw, seg.start, seg.len, out_row);
                    }
                }
            }
        });
    });
    y
}

fn plan_for_3d(opts: &ConvOptions, ow: usize, r: usize, oc: usize) -> SegmentPlan {
    use crate::kernel::Variant;
    let mut prefs = match &opts.force_kernels {
        Some(k) => k.clone(),
        None => crate::plan::default_kernel_prefs(r, opts.prefer_alpha16 || r >= 8),
    };
    if opts.allow_c64 && oc.is_multiple_of(64) {
        for p in &mut prefs {
            if p.alpha == 16 && p.variant == Variant::Standard {
                p.variant = Variant::C64;
            }
        }
    }
    SegmentPlan::build(ow, &prefs)
}

/// Direct 3-D convolution reference (f64 accumulators over f32 inputs).
pub fn direct_conv3d_f64(x: &Tensor5<f32>, w: &Tensor5<f32>, s: &Conv3dShape) -> Tensor5<f64> {
    let (od, oh, ow) = (s.od(), s.oh(), s.ow());
    let mut y = Tensor5::<f64>::zeros(s.y_dims());
    for b in 0..s.n {
        for oz in 0..od {
            for oy in 0..oh {
                for ox in 0..ow {
                    for o in 0..s.oc {
                        let mut acc = 0.0f64;
                        for fd in 0..s.fd {
                            let iz = oz as isize + fd as isize - s.pd as isize;
                            if iz < 0 || iz >= s.id as isize {
                                continue;
                            }
                            for fh in 0..s.fh {
                                let iy = oy as isize + fh as isize - s.ph as isize;
                                if iy < 0 || iy >= s.ih as isize {
                                    continue;
                                }
                                for fx in 0..s.fw {
                                    let ix = ox as isize + fx as isize - s.pw as isize;
                                    if ix < 0 || ix >= s.iw as isize {
                                        continue;
                                    }
                                    for i in 0..s.ic {
                                        acc += x.at(b, iz as usize, iy as usize, ix as usize, i) as f64
                                            * w.at(o, fd, fh, fx, i) as f64;
                                    }
                                }
                            }
                        }
                        *y.at_mut(b, oz, oy, ox, o) = acc;
                    }
                }
            }
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::GammaSpec;
    use crate::Variant;

    fn max_err(got: &Tensor5<f32>, want: &Tensor5<f64>) -> f64 {
        got.as_slice()
            .iter()
            .zip(want.as_slice())
            .map(|(&g, &w)| ((g as f64) - w).abs() / (w.abs() + 1.0))
            .fold(0.0, f64::max)
    }

    #[test]
    fn conv3d_matches_direct_r3() {
        let s = Conv3dShape::cube(1, 8, 3, 4, 3);
        let x = Tensor5::<f32>::random(s.x_dims(), 1, -1.0, 1.0);
        let w = Tensor5::<f32>::random(s.w_dims(), 2, -1.0, 1.0);
        let got = conv3d(&x, &w, &s);
        let want = direct_conv3d_f64(&x, &w, &s);
        let e = max_err(&got, &want);
        assert!(e < 5e-4, "{e}");
        assert_eq!(got.dims(), s.y_dims());
    }

    #[test]
    fn conv3d_matches_direct_varied_widths() {
        for r in [2usize, 4, 5] {
            let s = Conv3dShape::cube(1, 7, 2, 3, r);
            let x = Tensor5::<f32>::random(s.x_dims(), 10 + r as u64, -1.0, 1.0);
            let w = Tensor5::<f32>::random(s.w_dims(), 20 + r as u64, -1.0, 1.0);
            let got = conv3d(&x, &w, &s);
            let want = direct_conv3d_f64(&x, &w, &s);
            let e = max_err(&got, &want);
            assert!(e < 5e-4, "r = {r}: {e}");
        }
    }

    #[test]
    fn conv3d_anisotropic_filter() {
        // FD ≠ FH ≠ FW: only the width is constrained by the 1-D Winograd.
        let s = Conv3dShape {
            n: 1,
            id: 6,
            ih: 7,
            iw: 11,
            ic: 2,
            oc: 3,
            fd: 2,
            fh: 4,
            fw: 3,
            pd: 0,
            ph: 2,
            pw: 1,
        };
        let x = Tensor5::<f32>::random(s.x_dims(), 31, -1.0, 1.0);
        let w = Tensor5::<f32>::random(s.w_dims(), 32, -1.0, 1.0);
        let got = conv3d(&x, &w, &s);
        let want = direct_conv3d_f64(&x, &w, &s);
        let e = max_err(&got, &want);
        assert!(e < 5e-4, "{e}");
    }

    #[test]
    fn conv3d_forced_kernel_with_boundary() {
        let spec = GammaSpec::new(8, 6, 3, Variant::Standard);
        let opts = ConvOptions {
            force_kernels: Some(vec![spec]),
            ..Default::default()
        };
        // OW = 13: Γ8(6,3) ×2 tiles + remainder.
        let s = Conv3dShape {
            iw: 13,
            ..Conv3dShape::cube(1, 8, 2, 2, 3)
        };
        let x = Tensor5::<f32>::random(s.x_dims(), 41, -1.0, 1.0);
        let w = Tensor5::<f32>::random(s.w_dims(), 42, -1.0, 1.0);
        let got = conv3d_opts(&x, &w, &s, &opts);
        let want = direct_conv3d_f64(&x, &w, &s);
        let e = max_err(&got, &want);
        assert!(e < 5e-4, "{e}");
    }

    #[test]
    fn conv3d_ruse_variant() {
        let spec = GammaSpec::new(8, 4, 5, Variant::Ruse);
        let opts = ConvOptions {
            force_kernels: Some(vec![spec]),
            ..Default::default()
        };
        let s = Conv3dShape::cube(1, 8, 3, 3, 5);
        let x = Tensor5::<f32>::random(s.x_dims(), 51, -1.0, 1.0);
        let w = Tensor5::<f32>::random(s.w_dims(), 52, -1.0, 1.0);
        let got = conv3d_opts(&x, &w, &s, &opts);
        let want = direct_conv3d_f64(&x, &w, &s);
        let e = max_err(&got, &want);
        assert!(e < 1e-3, "{e}");
    }
}
