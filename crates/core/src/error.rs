//! Recoverable convolution errors.
//!
//! The original entry points (`conv2d`, `deconv2d`) validated shapes with
//! `assert!`, so a malformed request from a caller aborted the whole
//! process — unacceptable once convolutions are dispatched from a serving
//! engine that handles many independent requests. Every planning/execution
//! path now reports [`ConvError`] through the `try_*` entry points (and
//! through `iwino-engine`); the panicking wrappers remain only as thin
//! compatibility shims for code that wants the old behaviour.

use iwino_tensor::ConvShape;
use std::fmt;

/// Why a convolution request could not be planned or run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvError {
    /// A tensor's dimensions disagree with what `shape` implies.
    ShapeMismatch {
        /// Which operand was wrong (`"input"`, `"filter"`, `"dy"` …).
        what: &'static str,
        got: [usize; 4],
        want: [usize; 4],
    },
    /// The algorithm only handles unit strides (§4: Im2col-Winograd is a
    /// unit-stride algorithm) but the shape is strided.
    NonUnitStride {
        algorithm: &'static str,
        sh: usize,
        sw: usize,
    },
    /// The algorithm cannot run this shape for a reason other than stride
    /// (e.g. the fused 2-D Winograd baseline is 3×3-only).
    Unsupported { algorithm: &'static str, reason: String },
    /// No registered algorithm answers to this name (engine dispatch).
    UnknownAlgorithm { name: String },
    /// No registered algorithm supports the shape (engine dispatch).
    NoEligibleAlgorithm { shape: ConvShape },
    /// The named algorithm's `supports` query rejected the shape (engine
    /// dispatch); `supported` lists the registered backends that can run it,
    /// so callers of a forced backend know where to re-route. The shape is
    /// boxed to keep the error (carried through every `Result` in the
    /// planning paths) register-sized.
    UnsupportedShape {
        algorithm: &'static str,
        shape: Box<ConvShape>,
        supported: Vec<&'static str>,
    },
}

impl fmt::Display for ConvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvError::ShapeMismatch { what, got, want } => {
                write!(f, "{what} dims mismatch: got {got:?}, want {want:?}")
            }
            ConvError::NonUnitStride { algorithm, sh, sw } => {
                write!(
                    f,
                    "{algorithm} is a unit-stride algorithm (§4) but stride is {sh}×{sw}; \
                     use a GEMM/direct path for strided convolution"
                )
            }
            ConvError::Unsupported { algorithm, reason } => {
                write!(f, "{algorithm} cannot run this shape: {reason}")
            }
            ConvError::UnknownAlgorithm { name } => write!(f, "no convolution algorithm named {name:?} is registered"),
            ConvError::NoEligibleAlgorithm { shape } => {
                write!(f, "no registered convolution algorithm supports shape {shape:?}")
            }
            ConvError::UnsupportedShape {
                algorithm,
                shape,
                supported,
            } => {
                write!(
                    f,
                    "{algorithm} does not support shape {shape:?}; supported by: {}",
                    if supported.is_empty() {
                        "no registered backend".to_string()
                    } else {
                        supported.join(", ")
                    }
                )
            }
        }
    }
}

impl std::error::Error for ConvError {}

/// `got == want` or a [`ConvError::ShapeMismatch`] naming the operand.
pub fn expect_dims(what: &'static str, got: [usize; 4], want: [usize; 4]) -> Result<(), ConvError> {
    if got == want {
        Ok(())
    } else {
        Err(ConvError::ShapeMismatch { what, got, want })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_operand() {
        let e = expect_dims("input", [1, 2, 3, 4], [1, 2, 3, 5]).unwrap_err();
        let msg = format!("{e}");
        assert!(msg.contains("input"), "{msg}");
        assert!(msg.contains("[1, 2, 3, 4]"), "{msg}");
    }

    #[test]
    fn matching_dims_pass() {
        assert!(expect_dims("filter", [4, 3, 3, 2], [4, 3, 3, 2]).is_ok());
    }

    #[test]
    fn unsupported_shape_names_capable_backends() {
        let e = ConvError::UnsupportedShape {
            algorithm: "fft",
            shape: Box::new(ConvShape {
                sh: 2,
                sw: 2,
                ..ConvShape::square(1, 9, 3, 4, 3)
            }),
            supported: vec!["im2col-gemm-nhwc", "im2col-indirect", "direct"],
        };
        let msg = format!("{e}");
        assert!(msg.contains("fft"), "{msg}");
        assert!(msg.contains("im2col-indirect"), "{msg}");
        assert!(msg.contains("direct"), "{msg}");
    }

    #[test]
    fn error_is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(ConvError::UnknownAlgorithm { name: "nope".into() });
        assert!(format!("{e}").contains("nope"));
    }
}
