//! Boundary treatment (§5.5, Figure 7).
//!
//! Each `Γα(n, r)` output tile covers `n` items along the width axis; when
//! `OW % n ≠ 0` the tiles cannot exactly cover the ofms. Instead of
//! conditional stores (extra registers, redundant computation — see the
//! `Γ8(6,3)`, `OW = 7` example in §5.5 where 5/6 of the second tile would be
//! wasted), the ofms are divided into non-overlapping segments along `OW`:
//! the fastest kernel takes the largest prefix it divides exactly, smaller
//! kernels take the largest parts of the remainder they divide, and a
//! GEMM-style direct convolution takes whatever is left. "There is no
//! overlap between segments, and the variety of kernels is minimized."

use crate::kernel::Variant;
use std::fmt;

/// Vector lane width of the channel-chunk microkernels: 8 f32 = one 256-bit
/// register. Every hot loop in [`crate::kernel`] and the paired transforms
/// walks channels in unrolled lanes of this width (plus one remainder lane
/// for `IC % LANE ≠ 0`), so rustc autovectorises each lane to SIMD.
pub const LANE: usize = 8;

/// Channel-panel size `BK`: channels gathered/transformed per inner kernel
/// block. The paper's `BK = 8` is sized for SMEM ports; on CPU a panel of
/// four lanes fills cache lines while staying small enough that the `α×BK`
/// transformed tile lives in L1. Must stay a multiple of [`LANE`] — the
/// microkernels split `BK` into exact lanes and only the *final* partial
/// panel (`IC % BK`) may engage the remainder lane.
pub const BK: usize = 4 * LANE;

const _: () = assert!(BK.is_multiple_of(LANE), "channel panel must be a whole number of lanes");

/// A `Γα(n, r)` kernel selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GammaSpec {
    pub alpha: usize,
    pub n: usize,
    pub r: usize,
    pub variant: Variant,
}

impl GammaSpec {
    pub fn new(alpha: usize, n: usize, r: usize, variant: Variant) -> Self {
        assert_eq!(alpha, n + r - 1, "Γα(n,r) requires α = n + r − 1");
        assert!(n >= 2, "Γα(n,r) output tiles shorter than 2 are GEMM's job");
        assert!(r >= 2);
        GammaSpec { alpha, n, r, variant }
    }

    /// Theoretical multiplication reduction `Φ = n·r/α` — the planner's
    /// speed-priority key (§6.1.2).
    pub fn phi(&self) -> f64 {
        (self.n * self.r) as f64 / self.alpha as f64
    }

    /// State count per output tile — `α` for Im2col-Winograd, vs `α²` for
    /// the 2-D Winograd it replaces (§4.2's space-complexity argument).
    pub fn states(&self) -> usize {
        self.alpha
    }

    /// Items loaded per output for an `r×r` filter processed as `FH = r`
    /// 1-D convolutions: `(r·α + r²)/n`. §4.2 compares `Γ8(6,3)`'s `33/6`
    /// against `F(2×2, 3×3)`'s `25/4`.
    pub fn loads_per_output_2d(&self) -> f64 {
        (self.r * self.alpha + self.r * self.r) as f64 / self.n as f64
    }
}

/// Items loaded per output of a 2-D Winograd `F(m×m, r×r)`:
/// `((m+r−1)² + r²)/m²` — `25/4` for the classic `F(2×2, 3×3)` (§4.2).
pub fn winograd2d_loads_per_output(m: usize, r: usize) -> f64 {
    let a = m + r - 1;
    ((a * a + r * r) as f64) / ((m * m) as f64)
}

impl fmt::Display for GammaSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let suffix = match self.variant {
            Variant::Standard => "",
            Variant::Ruse => "^ruse",
            Variant::C64 => "^c64",
        };
        write!(f, "Γ{}{}({},{})", self.alpha, suffix, self.n, self.r)
    }
}

/// What covers one segment of the output width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelChoice {
    Gamma(GammaSpec),
    /// GEMM-style direct convolution (the final remainder).
    Gemm,
}

/// A half-open range `[start, start + len)` of output columns and the kernel
/// that computes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Segment {
    pub start: usize,
    pub len: usize,
    pub kernel: KernelChoice,
}

/// The per-shape execution plan along the width axis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentPlan {
    pub ow: usize,
    pub segments: Vec<Segment>,
}

impl SegmentPlan {
    /// Greedy planner: walk `prefs` in priority order; each kernel takes the
    /// largest prefix of the remaining width divisible by its tile size `n`;
    /// GEMM takes the rest. Kernels that would cover zero columns are
    /// skipped ("the variety of kernels is minimized").
    pub fn build(ow: usize, prefs: &[GammaSpec]) -> Self {
        let mut segments = Vec::new();
        let mut start = 0usize;
        let mut remaining = ow;
        for &spec in prefs {
            if remaining == 0 {
                break;
            }
            let cover = remaining - remaining % spec.n;
            if cover == 0 {
                continue;
            }
            segments.push(Segment {
                start,
                len: cover,
                kernel: KernelChoice::Gamma(spec),
            });
            start += cover;
            remaining -= cover;
        }
        if remaining > 0 {
            segments.push(Segment {
                start,
                len: remaining,
                kernel: KernelChoice::Gemm,
            });
        }
        if iwino_obs::enabled() {
            use iwino_obs::Counter;
            let gemm = segments.iter().filter(|s| s.kernel == KernelChoice::Gemm).count();
            iwino_obs::add(Counter::PlanCalls, 1);
            iwino_obs::add(Counter::PlanGammaSegments, (segments.len() - gemm) as u64);
            iwino_obs::add(Counter::PlanGemmSegments, gemm as u64);
        }
        SegmentPlan { ow, segments }
    }

    /// Every distinct Γ spec used by this plan.
    pub fn gamma_specs(&self) -> Vec<GammaSpec> {
        let mut out: Vec<GammaSpec> = Vec::new();
        for seg in &self.segments {
            if let KernelChoice::Gamma(g) = seg.kernel {
                if !out.contains(&g) {
                    out.push(g);
                }
            }
        }
        out
    }

    /// Fraction of output columns covered by Winograd kernels (vs GEMM).
    pub fn winograd_coverage(&self) -> f64 {
        if self.ow == 0 {
            return 1.0;
        }
        let wino: usize = self
            .segments
            .iter()
            .filter(|s| matches!(s.kernel, KernelChoice::Gamma(_)))
            .map(|s| s.len)
            .sum();
        wino as f64 / self.ow as f64
    }
}

/// The §5.4 rule: the data-reuse variant wins when `(r − 1)/α ≥ 0.4375`
/// ("the benefits surpass the drawbacks when (r−1)/α ≥ 0.4375. Concretely,
/// Γ8^ruse(4,5), Γ8^ruse(3,6), Γ8^ruse(2,7), Γ16^ruse(9,8), Γ16^ruse(8,9)").
pub fn ruse_wins(alpha: usize, r: usize) -> bool {
    (r as f64 - 1.0) / alpha as f64 >= 0.4375
}

/// Default kernel preference order for filter width `r`, mirroring the
/// paper's Figure 7 example (`FW = 3`: `Γ8(6,3)`, `Γ4^ruse(2,3)`, `Γ4(2,3)`,
/// GEMM) and its variant-selection rules:
///
/// * primary kernel: the largest supported α whose tile size `n = α+1−r` is
///   at least 2 — α = 16 for r ∈ {8, 9} (and optionally 7), α = 8 for
///   r ∈ {2..7}; `ruse` when `(r−1)/α ≥ 0.4375`, `c64` for the big-α kernels
///   when channels allow (selected at run time, see `ConvOptions`);
/// * remainder kernels: successively smaller α (with `ruse` preferred, as in
///   Figure 7), so the leftover width is still mostly Winograd-covered;
/// * GEMM for the final `< n_min` columns (implicit — the planner appends it).
pub fn default_kernel_prefs(r: usize, prefer_alpha16: bool) -> Vec<GammaSpec> {
    let mut prefs = Vec::new();
    let mut push_alpha = |alpha: usize| {
        if r < alpha {
            let n = alpha + 1 - r;
            if n >= 2 {
                let variant = if ruse_wins(alpha, r) {
                    Variant::Ruse
                } else {
                    Variant::Standard
                };
                prefs.push(GammaSpec::new(alpha, n, r, variant));
            }
        }
    };
    if prefer_alpha16 || r >= 8 {
        push_alpha(16);
    }
    push_alpha(8);
    push_alpha(4);
    prefs
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(alpha: usize, n: usize, r: usize) -> GammaSpec {
        GammaSpec::new(alpha, n, r, Variant::Standard)
    }

    #[test]
    fn figure7_example_fw3() {
        // FW = 3: Γ8(6,3) then Γ4(2,3) then GEMM; OW = 23 ⟹ 18 + 4 + 1.
        let prefs = [spec(8, 6, 3), spec(4, 2, 3)];
        let plan = SegmentPlan::build(23, &prefs);
        assert_eq!(
            plan.segments,
            vec![
                Segment {
                    start: 0,
                    len: 18,
                    kernel: KernelChoice::Gamma(prefs[0])
                },
                Segment {
                    start: 18,
                    len: 4,
                    kernel: KernelChoice::Gamma(prefs[1])
                },
                Segment {
                    start: 22,
                    len: 1,
                    kernel: KernelChoice::Gemm
                },
            ]
        );
    }

    #[test]
    fn exact_cover_uses_one_kernel() {
        let prefs = [spec(8, 6, 3), spec(4, 2, 3)];
        let plan = SegmentPlan::build(24, &prefs);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].len, 24);
        assert_eq!(plan.winograd_coverage(), 1.0);
    }

    #[test]
    fn paper_example_ow7_n6() {
        // §5.5: Γ8(6,3) with OW = 7 would waste 5/6 of a second tile; the
        // planner instead gives 6 columns to Γ8(6,3) and 1 to GEMM
        // (no Γ4 here to show the GEMM fallback).
        let plan = SegmentPlan::build(7, &[spec(8, 6, 3)]);
        assert_eq!(plan.segments.len(), 2);
        assert_eq!(
            plan.segments[1],
            Segment {
                start: 6,
                len: 1,
                kernel: KernelChoice::Gemm
            }
        );
        assert!((plan.winograd_coverage() - 6.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn zero_width_plan_is_empty() {
        let plan = SegmentPlan::build(0, &[spec(8, 6, 3)]);
        assert!(plan.segments.is_empty());
    }

    #[test]
    fn tiny_width_goes_straight_to_gemm() {
        let plan = SegmentPlan::build(1, &[spec(8, 6, 3), spec(4, 2, 3)]);
        assert_eq!(
            plan.segments,
            vec![Segment {
                start: 0,
                len: 1,
                kernel: KernelChoice::Gemm
            }]
        );
    }

    #[test]
    fn width_smaller_than_every_preferred_tile() {
        // ow = 3 < n for both Γ8(6,3) (n = 6) and Γ16(9,8)-style prefs with
        // n = 4: every kernel covers zero columns, GEMM takes the whole row.
        let prefs = [spec(8, 6, 3), spec(8, 4, 5)];
        let plan = SegmentPlan::build(3, &prefs);
        assert_eq!(
            plan.segments,
            vec![Segment {
                start: 0,
                len: 3,
                kernel: KernelChoice::Gemm
            }]
        );
        assert_eq!(plan.winograd_coverage(), 0.0);
        assert!(plan.gamma_specs().is_empty());
    }

    #[test]
    fn zero_width_plan_is_empty_with_many_prefs() {
        let prefs = [spec(16, 8, 9), spec(8, 6, 3), spec(4, 2, 3)];
        let plan = SegmentPlan::build(0, &prefs);
        assert!(plan.segments.is_empty());
        assert_eq!(plan.ow, 0);
        // Vacuously fully covered: nothing falls to GEMM.
        assert_eq!(plan.winograd_coverage(), 1.0);
    }

    #[test]
    fn ruse_filter_rejecting_all_variants_still_covers_the_row() {
        // A caller that keeps only ruse-winning variants ends up with an
        // empty prefs list for r = 2 (no (α, 2) pair satisfies §5.4's
        // (r−1)/α ≥ 0.4375). The planner must still cover the row via GEMM.
        let r = 2usize;
        let candidates = [spec(16, 15, 2), spec(8, 7, 2), spec(4, 3, 2)];
        let prefs: Vec<GammaSpec> = candidates
            .into_iter()
            .filter(|g| ruse_wins(g.alpha, r))
            .map(|g| GammaSpec {
                variant: Variant::Ruse,
                ..g
            })
            .collect();
        assert!(prefs.is_empty(), "no ruse winner exists for r = 2");
        for ow in [1usize, 5, 64, 223] {
            let plan = SegmentPlan::build(ow, &prefs);
            assert_eq!(
                plan.segments,
                vec![Segment {
                    start: 0,
                    len: ow,
                    kernel: KernelChoice::Gemm
                }],
                "ow = {ow}"
            );
        }
    }

    #[test]
    fn ruse_rule_matches_paper_list() {
        // §5.4's winners:
        assert!(ruse_wins(8, 5)); // Γ8^ruse(4,5)
        assert!(ruse_wins(8, 6)); // Γ8^ruse(3,6)
        assert!(ruse_wins(8, 7)); // Γ8^ruse(2,7)
        assert!(ruse_wins(16, 8)); // Γ16^ruse(9,8)
        assert!(ruse_wins(16, 9)); // Γ16^ruse(8,9)
                                   // And the non-winners:
        assert!(!ruse_wins(8, 2));
        assert!(!ruse_wins(8, 3)); // Γ8(6,3) stays standard
        assert!(!ruse_wins(8, 4));
        assert!(!ruse_wins(16, 7)); // Γ16(10,7) gets c64, not ruse
        assert!(!ruse_wins(4, 2));
        // (3−1)/4 = 0.5 ≥ 0.4375: Figure 7 indeed prioritises Γ4^ruse(2,3).
        assert!(ruse_wins(4, 3));
    }

    #[test]
    fn default_prefs_shapes() {
        // r = 3: α = 8 primary (n = 6), α = 4 fallback (n = 2).
        let p = default_kernel_prefs(3, false);
        assert_eq!(p[0].alpha, 8);
        assert_eq!(p[0].n, 6);
        assert_eq!(p[0].variant, Variant::Standard);
        assert!(p.iter().any(|s| s.alpha == 4 && s.n == 2));
        // r = 9: only α = 16 works (n = 8), then GEMM.
        let p = default_kernel_prefs(9, false);
        assert_eq!(p.len(), 1);
        assert_eq!((p[0].alpha, p[0].n), (16, 8));
        assert_eq!(p[0].variant, Variant::Ruse);
        // r = 7 with α16 preferred: Γ16(10,7) first, then Γ8^ruse(2,7).
        let p = default_kernel_prefs(7, true);
        assert_eq!((p[0].alpha, p[0].n, p[0].variant), (16, 10, Variant::Standard));
        assert_eq!((p[1].alpha, p[1].n, p[1].variant), (8, 2, Variant::Ruse));
        // r = 5: Γ8^ruse(4,5) primary.
        let p = default_kernel_prefs(5, false);
        assert_eq!((p[0].alpha, p[0].n, p[0].variant), (8, 4, Variant::Ruse));
    }

    #[test]
    fn section_4_2_space_comparison() {
        // "F(2×2,3×3) uses 4²/2 states and loads 25/4 items per output,
        //  while Γ8(6,3) only uses 8 states and loads 33/6 items per output."
        let g = spec(8, 6, 3);
        assert_eq!(g.states(), 8);
        assert!((g.loads_per_output_2d() - 33.0 / 6.0).abs() < 1e-12);
        assert!((winograd2d_loads_per_output(2, 3) - 25.0 / 4.0).abs() < 1e-12);
        // Same multiplication reduction (both 1/2.25), lighter state count.
        assert_eq!(g.phi(), 2.25);
        assert!(g.loads_per_output_2d() < winograd2d_loads_per_output(2, 3));
        assert!(g.states() < 4 * 4);
    }

    #[test]
    fn lane_width_invariant() {
        // The planner's channel panel is a whole number of microkernel
        // lanes, and the transforms + SIMD crates block to the same lane
        // width (the dispatch table's widest vector is one LANE of f32).
        assert_eq!(BK % LANE, 0);
        assert_eq!(LANE, iwino_transforms::LANE);
        assert_eq!(LANE, iwino_simd::LANE);
        assert!(iwino_simd::kernels().lane_width <= LANE);
    }

    #[test]
    fn phi_priority_values() {
        assert_eq!(spec(8, 4, 5).phi(), 2.5);
        assert_eq!(spec(8, 6, 3).phi(), 2.25);
        assert_eq!(spec(16, 8, 9).phi(), 4.5);
    }

    #[test]
    #[should_panic]
    fn rejects_inconsistent_alpha() {
        let _ = GammaSpec::new(8, 5, 5, Variant::Standard);
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_tiles() {
        let _ = GammaSpec::new(8, 1, 8, Variant::Standard);
    }

    proptest! {
        #[test]
        fn plan_exactly_tiles_the_width(ow in 0usize..300, r in 2usize..10) {
            let prefs = default_kernel_prefs(r, r >= 7);
            let plan = SegmentPlan::build(ow, &prefs);
            // Exact cover, in order, no overlap.
            let mut cursor = 0usize;
            for seg in &plan.segments {
                prop_assert_eq!(seg.start, cursor);
                prop_assert!(seg.len > 0);
                if let KernelChoice::Gamma(g) = seg.kernel {
                    prop_assert_eq!(seg.len % g.n, 0, "segment must be tile-divisible");
                }
                cursor += seg.len;
            }
            prop_assert_eq!(cursor, ow);
            // At most one GEMM segment, and only at the end.
            let gemm_count = plan.segments.iter().filter(|s| s.kernel == KernelChoice::Gemm).count();
            prop_assert!(gemm_count <= 1);
            if gemm_count == 1 {
                prop_assert_eq!(plan.segments.last().unwrap().kernel, KernelChoice::Gemm);
                // GEMM remainder is shorter than the smallest Γ tile.
                let min_n = prefs.iter().map(|p| p.n).min().unwrap_or(usize::MAX);
                prop_assert!(plan.segments.last().unwrap().len < min_n);
            }
        }
    }
}
