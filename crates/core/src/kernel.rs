//! The cache-blocked `Γα(n, r)` row kernel (§5.1, Algorithms 1 & 2).
//!
//! One kernel invocation computes a *segment* of one output row
//! `Y[b, oy, seg_start .. seg_start + tiles·n, :]`. The work is blocked
//! exactly like the paper's thread blocks:
//!
//! * `BN` output channels × `BM` width-tiles per block, iterating
//!   `FH × (IC / BK)` times (the `fh`/`oic` loops of Algorithm 1);
//! * per iteration the input tiles are gathered from the NHWC row (implicit
//!   zero padding via bounds checks, §5), transformed with the *simplified*
//!   `Dᵀ` (§5.3 even/odd pairing) in [`crate::plan::LANE`]-wide channel
//!   chunks, and multiplied into the `α`-state accumulators by a
//!   register-blocked FMA microkernel that runs along the contiguous `oc`
//!   axis of the transformed filter — the CPU analogue of the 8×(8×8)
//!   outer products, dispatched at runtime to an explicit AVX2/NEON
//!   implementation or the scalar fallback via `iwino_simd::kernels()`
//!   (see `fma_tile`; all paths are bit-for-bit identical);
//! * accumulation stays in the Winograd domain across `fh` **and** `ic` —
//!   the defining trick of Im2col-Winograd — so a single output transform
//!   per tile finishes the block (Algorithm 1's `transformOutput`).
//!
//! Variants:
//!
//! * [`Variant::Ruse`] — §5.4 input-tile overlap reuse: adjacent tiles of
//!   `F(n, r)` share `r − 1` input items; the ruse kernel gathers one
//!   contiguous *strip* of `(tiles−1)·n + α` positions per `(fh, ic-block)`
//!   instead of `tiles·α` positions, cutting gather traffic by the factor
//!   the paper derives (`α → α − (r−1)·(tiles−1)/tiles` per tile).
//! * [`Variant::C64`] — §5.6 enlarged cache block: `BN` doubled to 64 for
//!   `α = 16`, raising arithmetic intensity from `256/(α+r)` to
//!   `512/(α+2r)`.

use crate::filter::TransformedFilter;
use crate::plan::BK;
use iwino_obs as obs;
use iwino_simd as simd;
use iwino_transforms::{PairedTransform, WinogradTransform};
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Kernel flavour (§5.4, §5.6).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    Standard,
    /// Input-tile overlap reuse (`Γα^ruse`).
    Ruse,
    /// Enlarged cache block (`Γα^c64`), meaningful for α = 16.
    C64,
}

// `BK` (channel panel) and `LANE` (microkernel vector width) live in
// `crate::plan` so the planner, the kernels, and the tests agree on the
// lane-width invariant (`BK % LANE == 0`); the microkernels themselves
// live in `iwino-simd` behind its runtime dispatch table.

/// A ready-to-run `Γα(n, r)` kernel: transform matrices in f32 with the
/// §5.3 pairing plans, plus the block geometry.
pub struct GammaKernel {
    pub n: usize,
    pub r: usize,
    pub alpha: usize,
    pub variant: Variant,
    /// Input transform `Dᵀ` (α×α) with even/odd pairing.
    dt: PairedTransform,
    /// Output transform `Aᵀ` (n×α) with pairing (mostly singles).
    at: PairedTransform,
    /// Output-channel block size (`BN`).
    pub bn: usize,
    /// Width-tile block size (`BM`).
    pub bm: usize,
}

/// Everything a kernel needs to know about the output row it is computing.
///
/// The job is expressed as a *row plan*: the list of input rows that
/// contribute to this output row, each paired with the transformed-filter
/// plane that multiplies it. For 2-D convolution the plan holds one entry
/// per in-bounds `fh` (plane = `fh`); for the ND extension (§4.2) it holds
/// one entry per in-bounds `(f_outer…, fh)` combination — Stage 2 of the
/// algorithm is completely unchanged, exactly as the paper claims.
pub struct RowJob<'a> {
    /// The input image (any outer layout; rows are addressed by offset).
    pub x: &'a [f32],
    /// `(offset of the input row start within x, filter plane index)` for
    /// every contributing row. Out-of-bounds rows are simply absent
    /// (implicit zero padding along the outer axes).
    pub rows: &'a [(usize, usize)],
    /// Input row width (items) and channel count.
    pub iw: usize,
    pub ic: usize,
    /// Horizontal padding.
    pub pw: usize,
    /// Output row geometry.
    pub ow: usize,
    pub oc: usize,
}

/// Reusable per-task scratch buffers (the CPU's "shared memory"). One
/// `Scratch` per worker task; sized for the largest kernel in the plan.
#[derive(Default)]
pub struct Scratch {
    /// Gathered input strip/tiles: `α` (or strip length) rows × BK channels.
    gather: Vec<f32>,
    /// Transformed input tiles: `2 × α × BK` (the tile loops pair tiles so
    /// the outer product reuses each filter-panel pass across two tiles).
    tx: Vec<f32>,
    /// Winograd-domain accumulators: `BM × α × BN`.
    acc: Vec<f32>,
    /// Output tile staging: `n × BN`.
    ytile: Vec<f32>,
}

/// Hard size bound of the process-wide kernel cache. The supported
/// `(α, n, r, variant)` space is small — α ∈ {4, 8, 16} with `n + r = α + 1`,
/// `n, r ≥ 2`, ≤ 2 variants each — under 60 legitimate combinations, so the
/// bound is never hit by normal use; it exists so a caller generating
/// arbitrary specs cannot grow the cache without limit.
const KERNEL_CACHE_BOUND: usize = 64;

/// Keyed-cache insert with a hard size bound: a resident value is cloned
/// out; otherwise, if the map is full, an arbitrary resident entry is
/// evicted first (hits are homogeneous and the cache tiny, so LRU
/// bookkeeping would cost more than the rare regeneration it saves).
fn bounded_insert<K: Eq + Hash + Clone, V: Clone>(
    map: &mut HashMap<K, V>,
    bound: usize,
    key: K,
    make: impl FnOnce() -> V,
) -> V {
    if let Some(v) = map.get(&key) {
        return v.clone();
    }
    if map.len() >= bound.max(1) {
        if let Some(evict) = map.keys().next().cloned() {
            map.remove(&evict);
        }
    }
    let v = make();
    map.insert(key, v.clone());
    v
}

/// Process-wide kernel cache: generating the transform matrices runs exact
/// rational arithmetic (expensive for α = 16), and convolutions inside a
/// training loop would otherwise pay it on every call. Bounded to
/// [`KERNEL_CACHE_BOUND`] entries.
pub fn cached_kernel(alpha: usize, n: usize, r: usize, variant: Variant) -> Arc<GammaKernel> {
    type Cache = Mutex<HashMap<(usize, usize, usize, Variant), Arc<GammaKernel>>>;
    static CACHE: OnceLock<Cache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut map = cache.lock().expect("kernel cache poisoned");
    bounded_insert(&mut map, KERNEL_CACHE_BOUND, (alpha, n, r, variant), || {
        Arc::new(GammaKernel::new(alpha, n, r, variant))
    })
}

impl GammaKernel {
    /// Build the kernel for one [`crate::plan::GammaSpec`]-equivalent triple.
    pub fn new(alpha: usize, n: usize, r: usize, variant: Variant) -> Self {
        assert_eq!(alpha, n + r - 1);
        let t = WinogradTransform::generate(n, r);
        // Block geometry per §5.1: BN×BM = 64×64 (α=4), 64×32 (α=8),
        // 32×32 (α=16); c64 doubles BN back to 64 (§5.6).
        let (bn, bm) = match alpha {
            4 => (64, 64),
            8 => (64, 32),
            16 if variant == Variant::C64 => (64, 32),
            _ => (32, 32),
        };
        GammaKernel {
            n,
            r,
            alpha,
            variant,
            dt: t.dt_paired(),
            at: t.at_paired(),
            bn,
            bm,
        }
    }

    /// The `WinogradTransform` this kernel was generated from (for tests and
    /// op counting).
    pub fn transform(&self) -> WinogradTransform {
        WinogradTransform::generate(self.n, self.r)
    }

    /// Compute the segment `[seg_start, seg_start + tiles·n)` of the row
    /// described by `job`, writing into `out_row` (the full `OW×OC` row).
    ///
    /// `tw` must have been built with the same `F(n, r)` transform.
    pub fn run_segment(
        &self,
        job: &RowJob<'_>,
        tw: &TransformedFilter,
        seg_start: usize,
        tiles: usize,
        out_row: &mut [f32],
        scratch: &mut Scratch,
    ) {
        debug_assert_eq!(tw.alpha, self.alpha);
        debug_assert_eq!(tw.ic, job.ic);
        debug_assert_eq!(tw.oc, job.oc);
        debug_assert_eq!(out_row.len(), job.ow * job.oc);
        debug_assert!(seg_start + tiles * self.n <= job.ow);
        // Flight-recorder span for the whole segment: one B/E pair per
        // `run_segment` call is cheap enough to leave unconditional (a
        // single relaxed load when tracing is off) and is the event the
        // worker-timeline view hangs the Γ work off.
        let _seg = obs::trace_span(obs::Stage::GammaSegment);
        let alpha = self.alpha;
        let n = self.n;
        let (bn, bm) = (self.bn, self.bm);
        // Hoisted once per segment so the disabled path costs one relaxed
        // load + predictable branches in the loops below.
        let rec = obs::enabled();

        // Disjoint borrows of the scratch fields for the loops below.
        let Scratch {
            gather,
            tx,
            acc: acc_buf,
            ytile,
        } = scratch;
        tx.resize(2 * alpha * BK, 0.0);
        acc_buf.resize(bm * alpha * bn, 0.0);
        ytile.resize(n * bn, 0.0);

        for oc0 in (0..job.oc).step_by(bn) {
            let ocb = bn.min(job.oc - oc0);
            for t0 in (0..tiles).step_by(bm) {
                let tb = bm.min(tiles - t0);
                let acc = &mut acc_buf[..tb * alpha * bn];
                acc.fill(0.0);
                for &(x_off, plane) in job.rows {
                    let x_row = &job.x[x_off..x_off + job.iw * job.ic];
                    for ic0 in (0..job.ic).step_by(BK) {
                        let icb = BK.min(job.ic - ic0);
                        let s = GatherTx {
                            gather: &mut *gather,
                            tx: &mut *tx,
                        };
                        match self.variant {
                            Variant::Ruse => self.block_ruse(
                                job, tw, x_row, seg_start, t0, tb, plane, ic0, icb, oc0, ocb, acc, s, rec,
                            ),
                            _ => self.block_standard(
                                job, tw, x_row, seg_start, t0, tb, plane, ic0, icb, oc0, ocb, acc, s, rec,
                            ),
                        }
                    }
                }
                // Output transform: ytile(n×BN) = Aᵀ(n×α) · acc_t(α×BN).
                let ot_start = rec.then(Instant::now);
                for t in 0..tb {
                    let acc_t = &acc_buf[t * alpha * bn..(t + 1) * alpha * bn];
                    self.at.apply_f32_strided(acc_t, bn, ytile, bn, ocb);
                    let ox0 = seg_start + (t0 + t) * n;
                    for j in 0..n {
                        let dst = &mut out_row[(ox0 + j) * job.oc + oc0..(ox0 + j) * job.oc + oc0 + ocb];
                        dst.copy_from_slice(&ytile[j * bn..j * bn + ocb]);
                    }
                }
                if let Some(t0i) = ot_start {
                    obs::add_stage_ns(obs::Stage::OutputTransform, t0i.elapsed().as_nanos() as u64);
                    obs::add(obs::Counter::Tiles, tb as u64);
                    if self.variant == Variant::Ruse {
                        obs::add(obs::Counter::RuseTiles, tb as u64);
                    }
                    obs::add(obs::Counter::BytesStored, (tb * n * ocb * 4) as u64);
                }
            }
        }
    }
}

/// Disjoint mutable views of the gather/transform scratch, reborrowed per
/// inner block.
struct GatherTx<'a> {
    gather: &'a mut Vec<f32>,
    tx: &'a mut Vec<f32>,
}

impl GammaKernel {
    /// Standard block: gather each tile's α positions, transform, FMA.
    #[allow(clippy::too_many_arguments)]
    fn block_standard(
        &self,
        job: &RowJob<'_>,
        tw: &TransformedFilter,
        x_row: &[f32],
        seg_start: usize,
        t0: usize,
        tb: usize,
        plane: usize,
        ic0: usize,
        icb: usize,
        oc0: usize,
        ocb: usize,
        acc: &mut [f32],
        s: GatherTx<'_>,
        rec: bool,
    ) {
        let alpha = self.alpha;
        let bn = self.bn;
        s.gather.resize(alpha * BK, 0.0);
        // Tiles run in pairs: both tiles' gathered+transformed inputs are
        // staged in `s.tx` (`2 × α × BK`), then one paired FMA pass streams
        // the filter panel once for both (see `fma_tile2`). An odd trailing
        // tile falls back to the single-tile path.
        if !rec {
            let mut t = 0;
            while t + 2 <= tb {
                for k in 0..2 {
                    let px0 = (seg_start + (t0 + t + k) * self.n) as isize - job.pw as isize;
                    gather_positions(x_row, job.iw, job.ic, ic0, icb, px0, alpha, s.gather);
                    self.dt
                        .apply_f32_strided(s.gather, BK, &mut s.tx[k * alpha * BK..], BK, icb);
                }
                fma_tile2(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
                t += 2;
            }
            if t < tb {
                let px0 = (seg_start + (t0 + t) * self.n) as isize - job.pw as isize;
                gather_positions(x_row, job.iw, job.ic, ic0, icb, px0, alpha, s.gather);
                self.dt.apply_f32_strided(s.gather, BK, s.tx, BK, icb);
                fma_tile(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
            }
            return;
        }
        // Recording path: attribute gather+Dᵀ to input_transform and the FMA
        // stage to outer_product, flushing once per block to keep atomic
        // traffic off the per-tile path.
        let mut it_ns = 0u64;
        let mut op_ns = 0u64;
        let mut t = 0;
        while t + 2 <= tb {
            let start = Instant::now();
            for k in 0..2 {
                let px0 = (seg_start + (t0 + t + k) * self.n) as isize - job.pw as isize;
                gather_positions(x_row, job.iw, job.ic, ic0, icb, px0, alpha, s.gather);
                self.dt
                    .apply_f32_strided(s.gather, BK, &mut s.tx[k * alpha * BK..], BK, icb);
            }
            let mid = Instant::now();
            fma_tile2(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
            it_ns += (mid - start).as_nanos() as u64;
            op_ns += mid.elapsed().as_nanos() as u64;
            t += 2;
        }
        if t < tb {
            let px0 = (seg_start + (t0 + t) * self.n) as isize - job.pw as isize;
            let start = Instant::now();
            gather_positions(x_row, job.iw, job.ic, ic0, icb, px0, alpha, s.gather);
            self.dt.apply_f32_strided(s.gather, BK, s.tx, BK, icb);
            let mid = Instant::now();
            fma_tile(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
            it_ns += (mid - start).as_nanos() as u64;
            op_ns += mid.elapsed().as_nanos() as u64;
        }
        obs::add_stage_ns(obs::Stage::InputTransform, it_ns);
        obs::add_stage_ns(obs::Stage::OuterProduct, op_ns);
        // Gathered input items (tb tiles × α positions, no overlap sharing)
        // plus the transformed-filter panel touched by this block.
        obs::add(
            obs::Counter::BytesLoaded,
            ((tb * alpha * icb + alpha * icb * ocb) * 4) as u64,
        );
    }

    /// Ruse block (§5.4): gather one strip covering all `tb` tiles once,
    /// then transform each tile from its offset inside the strip. Adjacent
    /// tiles overlap by `r − 1` positions, which are now loaded once.
    #[allow(clippy::too_many_arguments)]
    fn block_ruse(
        &self,
        job: &RowJob<'_>,
        tw: &TransformedFilter,
        x_row: &[f32],
        seg_start: usize,
        t0: usize,
        tb: usize,
        plane: usize,
        ic0: usize,
        icb: usize,
        oc0: usize,
        ocb: usize,
        acc: &mut [f32],
        s: GatherTx<'_>,
        rec: bool,
    ) {
        let alpha = self.alpha;
        let bn = self.bn;
        let strip_len = (tb - 1) * self.n + alpha;
        s.gather.resize(strip_len * BK, 0.0);
        let px0 = (seg_start + t0 * self.n) as isize - job.pw as isize;
        // Tiles pair up exactly as in the standard block (shared-strip
        // gather, then paired Dᵀ + one panel pass for two tiles).
        if !rec {
            gather_positions(x_row, job.iw, job.ic, ic0, icb, px0, strip_len, s.gather);
            let mut t = 0;
            while t + 2 <= tb {
                for k in 0..2 {
                    let from = &s.gather[(t + k) * self.n * BK..];
                    self.dt
                        .apply_f32_strided(from, BK, &mut s.tx[k * alpha * BK..], BK, icb);
                }
                fma_tile2(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
                t += 2;
            }
            if t < tb {
                let from = &s.gather[t * self.n * BK..];
                self.dt.apply_f32_strided(from, BK, s.tx, BK, icb);
                fma_tile(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
            }
            return;
        }
        // Recording path: the shared strip gather counts toward
        // input_transform, like the per-tile gathers of the standard block.
        let mut it_ns = 0u64;
        let mut op_ns = 0u64;
        let start = Instant::now();
        gather_positions(x_row, job.iw, job.ic, ic0, icb, px0, strip_len, s.gather);
        it_ns += start.elapsed().as_nanos() as u64;
        let mut t = 0;
        while t + 2 <= tb {
            let start = Instant::now();
            for k in 0..2 {
                let from = &s.gather[(t + k) * self.n * BK..];
                self.dt
                    .apply_f32_strided(from, BK, &mut s.tx[k * alpha * BK..], BK, icb);
            }
            let mid = Instant::now();
            fma_tile2(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
            it_ns += (mid - start).as_nanos() as u64;
            op_ns += mid.elapsed().as_nanos() as u64;
            t += 2;
        }
        if t < tb {
            let from = &s.gather[t * self.n * BK..];
            let start = Instant::now();
            self.dt.apply_f32_strided(from, BK, s.tx, BK, icb);
            let mid = Instant::now();
            fma_tile(acc, t, alpha, bn, s.tx, icb, tw, plane, ic0, oc0, ocb);
            it_ns += (mid - start).as_nanos() as u64;
            op_ns += mid.elapsed().as_nanos() as u64;
        }
        obs::add_stage_ns(obs::Stage::InputTransform, it_ns);
        obs::add_stage_ns(obs::Stage::OuterProduct, op_ns);
        // One shared strip instead of tb·α positions — the §5.4 reuse saving
        // shows up directly in this counter.
        obs::add(
            obs::Counter::BytesLoaded,
            ((strip_len * icb + alpha * icb * ocb) * 4) as u64,
        );
    }
}

/// Gather `count` consecutive width positions starting at (possibly
/// negative) `px0` for channels `[ic0, ic0 + icb)` into `dst[count × BK]`.
/// Out-of-range positions contribute zeros (implicit padding, §5).
#[allow(clippy::too_many_arguments)] // flat geometry args keep the hot path call-site cheap
fn gather_positions(
    x_row: &[f32],
    iw: usize,
    ic: usize,
    ic0: usize,
    icb: usize,
    px0: isize,
    count: usize,
    dst: &mut [f32],
) {
    for k in 0..count {
        let px = px0 + k as isize;
        let d = &mut dst[k * BK..k * BK + icb];
        if px >= 0 && (px as usize) < iw {
            let base = px as usize * ic + ic0;
            d.copy_from_slice(&x_row[base..base + icb]);
        } else {
            d.fill(0.0);
        }
    }
}

/// The element-wise multiply stage for one tile: for every state `s`, FMA
/// the transformed input scalars against the filter's contiguous `IC×OC`
/// panel — the paper's outer-product unit. The per-state row runs on the
/// dispatched `iwino-simd` microkernel (AVX2/NEON/scalar, all bit-for-bit
/// identical): output channels are register-blocked down to a masked tail
/// and per output element the `ic`-order summation is identical to a plain
/// nested loop, keeping variants and ISAs bitwise-comparable. When scalar
/// is dispatched the (inlinable) fallback is called directly instead of
/// through the table's function pointer, so the pre-dispatch codegen — and
/// its performance — is preserved exactly.
#[allow(clippy::too_many_arguments)]
fn fma_tile(
    acc: &mut [f32],
    t: usize,
    alpha: usize,
    bn: usize,
    tx: &[f32],
    icb: usize,
    tw: &TransformedFilter,
    plane: usize,
    ic0: usize,
    oc0: usize,
    ocb: usize,
) {
    let oc = tw.oc;
    let mk = simd::kernels();
    let use_scalar = mk.isa == simd::Isa::Scalar;
    for s in 0..alpha {
        let base = (t * alpha + s) * bn;
        let arow = &mut acc[base..base + ocb];
        let txs = &tx[s * BK..s * BK + icb];
        let panel = &tw.panel(plane, s)[ic0 * oc..];
        if use_scalar {
            simd::scalar::outer_product_row(arow, txs, panel, oc, oc0);
        } else {
            (mk.outer_product_row)(arow, txs, panel, oc, oc0);
        }
    }
}

/// Paired-tile variant of [`fma_tile`]: tiles `t` and `t + 1` accumulated
/// in one pass over each state's filter panel. The panel stream is the
/// outer product's dominant memory traffic (`ocb` floats per channel vs 1
/// for the tx stream), so reusing each panel row across two tiles halves
/// the stage's bandwidth demand — the difference between an L2-bound and
/// an FP-bound AVX2 kernel at `ocb = 64`. `tx` holds both tiles'
/// transformed inputs (`2 × α × BK`, tile `t` first). Per output element
/// the accumulation order is exactly [`fma_tile`]'s, so pairing is
/// bitwise-invisible.
#[allow(clippy::too_many_arguments)]
fn fma_tile2(
    acc: &mut [f32],
    t: usize,
    alpha: usize,
    bn: usize,
    tx: &[f32],
    icb: usize,
    tw: &TransformedFilter,
    plane: usize,
    ic0: usize,
    oc0: usize,
    ocb: usize,
) {
    let oc = tw.oc;
    let mk = simd::kernels();
    let use_scalar = mk.isa == simd::Isa::Scalar;
    // Disjoint accumulator views for the two tiles (`α·bn` apart).
    let (acc0, acc1) = acc.split_at_mut((t + 1) * alpha * bn);
    for s in 0..alpha {
        let base = (t * alpha + s) * bn;
        let arow0 = &mut acc0[base..base + ocb];
        let arow1 = &mut acc1[s * bn..s * bn + ocb];
        let txs0 = &tx[s * BK..s * BK + icb];
        let txs1 = &tx[(alpha + s) * BK..(alpha + s) * BK + icb];
        let panel = &tw.panel(plane, s)[ic0 * oc..];
        if use_scalar {
            simd::scalar::outer_product_row2(arow0, arow1, txs0, txs1, panel, oc, oc0);
        } else {
            (mk.outer_product_row2)(arow0, arow1, txs0, txs1, panel, oc, oc0);
        }
    }
}

/// Direct (GEMM-style) computation of a row segment, used for the boundary
/// remainder (§5.5) and as the in-crate fallback. `w_hwio` is the
/// `planes×FW×IC×OC` filter from [`crate::filter::filter_hwio`] (planes =
/// `FH` in 2-D, `FD·FH` in 3-D); the inner FMA runs along the contiguous
/// `oc` axis. `fw` is the filter width.
pub fn direct_row_segment(
    job: &RowJob<'_>,
    w_hwio: &[f32],
    fw: usize,
    seg_start: usize,
    len: usize,
    out_row: &mut [f32],
) {
    let (iw, ic, oc) = (job.iw, job.ic, job.oc);
    for ox in seg_start..seg_start + len {
        let out_px = &mut out_row[ox * oc..(ox + 1) * oc];
        out_px.fill(0.0);
        for &(x_off, plane) in job.rows {
            let x_row = &job.x[x_off..x_off + iw * ic];
            for fx in 0..fw {
                let px = ox as isize + fx as isize - job.pw as isize;
                if px < 0 || px >= iw as isize {
                    continue;
                }
                let x_px = &x_row[px as usize * ic..(px as usize + 1) * ic];
                let w_base = (plane * fw + fx) * ic * oc;
                for (i, &xv) in x_px.iter().enumerate() {
                    if xv == 0.0 {
                        continue;
                    }
                    let wrow = &w_hwio[w_base + i * oc..w_base + (i + 1) * oc];
                    for (a, &w) in out_px.iter_mut().zip(wrow) {
                        *a += xv * w;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_block_geometry_follows_paper() {
        assert_eq!(
            {
                let k = GammaKernel::new(4, 3, 2, Variant::Standard);
                (k.bn, k.bm)
            },
            (64, 64)
        );
        assert_eq!(
            {
                let k = GammaKernel::new(8, 6, 3, Variant::Standard);
                (k.bn, k.bm)
            },
            (64, 32)
        );
        assert_eq!(
            {
                let k = GammaKernel::new(16, 8, 9, Variant::Standard);
                (k.bn, k.bm)
            },
            (32, 32)
        );
        assert_eq!(
            {
                let k = GammaKernel::new(16, 8, 9, Variant::C64);
                (k.bn, k.bm)
            },
            (64, 32)
        );
    }

    #[test]
    fn gather_handles_padding_on_both_sides() {
        // x row: 3 positions × 2 channels = [10,11, 20,21, 30,31]
        let x_row = [10.0f32, 11.0, 20.0, 21.0, 30.0, 31.0];
        let mut dst = vec![9.0f32; 5 * BK];
        gather_positions(&x_row, 3, 2, 0, 2, -1, 5, &mut dst);
        // px = -1 → zeros; px = 0,1,2 → data; px = 3 → zeros.
        assert_eq!(&dst[0..2], &[0.0, 0.0]);
        assert_eq!(&dst[BK..BK + 2], &[10.0, 11.0]);
        assert_eq!(&dst[2 * BK..2 * BK + 2], &[20.0, 21.0]);
        assert_eq!(&dst[3 * BK..3 * BK + 2], &[30.0, 31.0]);
        assert_eq!(&dst[4 * BK..4 * BK + 2], &[0.0, 0.0]);
    }

    #[test]
    fn gather_channel_offset() {
        // 1 position × 4 channels; take channels 2..4.
        let x_row = [1.0f32, 2.0, 3.0, 4.0];
        let mut dst = vec![0.0f32; BK];
        gather_positions(&x_row, 1, 4, 2, 2, 0, 1, &mut dst);
        assert_eq!(&dst[0..2], &[3.0, 4.0]);
    }

    #[test]
    fn bounded_insert_caps_len_and_reuses_residents() {
        let mut m: HashMap<usize, usize> = HashMap::new();
        for i in 0..100 {
            let v = bounded_insert(&mut m, 8, i, || i * 10);
            assert_eq!(v, i * 10);
            assert!(m.len() <= 8, "cache grew past its bound: {}", m.len());
        }
        assert_eq!(m.len(), 8);
        // A resident key is cloned out, never rebuilt (and never evicts).
        let k = *m.keys().next().unwrap();
        let v = bounded_insert(&mut m, 8, k, || panic!("resident key must not be rebuilt"));
        assert_eq!(v, k * 10);
        assert_eq!(m.len(), 8);
    }

    /// Reuse, bounding, and eviction safety of the real kernel cache live
    /// in ONE test: an eviction exercise in a parallel test could otherwise
    /// race the `Arc::ptr_eq` check (the cache is process-global).
    #[test]
    fn cached_kernel_reuses_across_calls() {
        let a = cached_kernel(8, 6, 3, Variant::Standard);
        let b = cached_kernel(8, 6, 3, Variant::Standard);
        assert!(
            Arc::ptr_eq(&a, &b),
            "repeated conv2d calls must share one generated kernel"
        );
        // Legitimate spec space fits the bound with headroom: α ∈ {4, 8, 16},
        // n + r = α + 1, n, r ≥ 2, ≤ 2 variants each.
        let combos: usize = [4usize, 8, 16].iter().map(|&a| (a - 2) * 2).sum();
        assert!(combos <= KERNEL_CACHE_BOUND, "{combos} legit combos exceed the bound");

        // Regression: eviction at the bound drops only the cache's OWN
        // reference — an Arc handed out before the flood keeps computing
        // mid-conv. (conv2d holds its kernels across the whole call, so a
        // concurrent caller flooding the cache with other specs must never
        // invalidate them.)
        let held = a;
        let (job_x, w, w_hwio) = eviction_fixture();
        let rows = [(0usize, 0usize), (12 * 3, 1), (2 * 12 * 3, 2)];
        let job = RowJob {
            x: &job_x,
            rows: &rows,
            iw: 12,
            ic: 3,
            pw: 1,
            ow: 12,
            oc: 4,
        };
        let tw = TransformedFilter::forward(&w, &held.transform());
        let mut scratch = Scratch::default();
        let mut before = vec![0.0f32; 12 * 4];
        held.run_segment(&job, &tw, 0, 2, &mut before, &mut scratch);

        // Flood: every (α, n, r) triple for α ∈ {4, 8, 16} in all three
        // variants is 66 distinct keys — strictly more than the bound, so
        // inserts evict residents (very likely including `held`'s entry).
        let mut flooded = 0usize;
        for alpha in [4usize, 8, 16] {
            for n in 2..alpha {
                let r = alpha + 1 - n;
                for variant in [Variant::Standard, Variant::Ruse, Variant::C64] {
                    let k = cached_kernel(alpha, n, r, variant);
                    assert_eq!((k.alpha, k.n, k.r), (alpha, n, r));
                    flooded += 1;
                }
            }
        }
        assert!(flooded > KERNEL_CACHE_BOUND, "flood too small: {flooded}");

        // The held Arc still produces the identical segment, and a fresh
        // fetch (rebuilt if evicted) agrees bitwise.
        let mut after = vec![0.0f32; 12 * 4];
        held.run_segment(&job, &tw, 0, 2, &mut after, &mut scratch);
        assert_eq!(before, after, "held kernel changed behaviour after cache flood");
        let fresh = cached_kernel(8, 6, 3, Variant::Standard);
        let mut fresh_out = vec![0.0f32; 12 * 4];
        fresh.run_segment(&job, &tw, 0, 2, &mut fresh_out, &mut scratch);
        assert_eq!(before, fresh_out, "refetched kernel disagrees with held one");

        // And both match the direct reference within fp tolerance.
        let mut reference = vec![0.0f32; 12 * 4];
        direct_row_segment(&job, &w_hwio, 3, 0, 12, &mut reference);
        for (i, (&got, &want)) in before.iter().zip(&reference).enumerate() {
            assert!(
                (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                "output {i}: {got} vs direct {want}"
            );
        }
    }

    /// Deterministic Γ8(6,3) single-row workload: a 3-row image slab
    /// (`IW = 12, IC = 3`), an `OC = 4` filter in OHWI, and the same filter
    /// in the HWIO layout `direct_row_segment` expects.
    fn eviction_fixture() -> (Vec<f32>, iwino_tensor::Tensor4<f32>, Vec<f32>) {
        let (iw, ic, oc, fh, fw) = (12usize, 3usize, 4usize, 3usize, 3usize);
        let x: Vec<f32> = (0..3 * iw * ic)
            .map(|i| ((i * 37 + 11) % 23) as f32 * 0.25 - 2.0)
            .collect();
        let mut w = iwino_tensor::Tensor4::<f32>::filter_ohwi(oc, fh, fw, ic);
        for (i, v) in w.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 29 + 5) % 19) as f32 * 0.125 - 1.0;
        }
        let mut w_hwio = vec![0.0f32; fh * fw * ic * oc];
        for o in 0..oc {
            for h in 0..fh {
                for fx in 0..fw {
                    for i in 0..ic {
                        w_hwio[((h * fw + fx) * ic + i) * oc + o] = w.at(o, h, fx, i);
                    }
                }
            }
        }
        (x, w, w_hwio)
    }
}
