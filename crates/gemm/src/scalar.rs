//! Safe-scalar 6×16 register-tile microkernel — the bit-exactness reference.
//!
//! Every SIMD lane of this crate must reproduce this kernel's results
//! bit-for-bit: each C element accumulates its `k` products in ascending-`k`
//! order with a separate (individually rounded) multiply and add, never a
//! fused multiply-add. The AVX2/NEON kernels perform the same operation
//! sequence per element with vector registers, so all three dispatch lanes
//! agree to the last bit (the same contract `iwino-simd` pins for the Γ
//! path).

use crate::{MR, NR};

/// `C[MR×NR] += Aᵖ[kc×MR] · Bᵖ[kc×NR]` over packed panels.
///
/// `a` holds `kc` groups of `MR` column values (k-major A micro-panel), `b`
/// holds `kc` groups of `NR` row values (k-major B micro-panel), and `c` is
/// the tile origin with row stride `ldc ≥ NR`. The accumulators initialize
/// from C, so the caller chooses overwrite-vs-accumulate by zeroing C first.
pub(crate) fn tile_6x16(kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    assert!(a.len() >= kc * MR, "A micro-panel too short");
    assert!(b.len() >= kc * NR, "B micro-panel too short");
    assert!(ldc >= NR, "C row stride below tile width");
    assert!(c.len() >= (MR - 1) * ldc + NR, "C tile out of bounds");
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for kk in 0..kc {
        let av = &a[kk * MR..kk * MR + MR];
        let bv = &b[kk * NR..kk * NR + NR];
        for (row, &ar) in acc.iter_mut().zip(av) {
            for (slot, &bj) in row.iter_mut().zip(bv) {
                *slot += ar * bj;
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}
