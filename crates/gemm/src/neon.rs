//! NEON 6×16 register-tile microkernel (AArch64, 4-lane `float32x4_t`).
//!
//! Register budget: 6 rows × 4 q accumulators = 24, plus four B loads and
//! one A broadcast per k step — 29 of the 32 q registers.
//!
//! Same bit-exactness contract as the AVX2 path: separate `fmul`/`fadd`
//! (never the fused `vfmaq_f32`) in the scalar kernel's per-element
//! accumulation order, so results are bitwise identical to
//! [`crate::scalar::tile_6x16`]. Packed panels are always full `MR`/`NR`
//! groups (the packers zero-pad edges), so no remainder lanes are needed.
//!
//! Safety structure mirrors `iwino-simd`'s kernels: the public safe wrapper
//! asserts every bound, the private `unsafe` kernel does the pointer work,
//! and the wrapper is only dispatched after runtime NEON detection
//! (`iwino_simd::kernels().isa == Isa::Neon`).

use crate::{MR, NR};
use core::arch::aarch64::*;

/// Safe dispatch entry with [`crate::scalar::tile_6x16`] semantics:
/// `C[MR×NR] += Aᵖ[kc×MR] · Bᵖ[kc×NR]`, accumulators initialized from C.
pub(crate) fn tile_6x16(kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    assert!(a.len() >= kc * MR, "A micro-panel too short");
    assert!(b.len() >= kc * NR, "B micro-panel too short");
    assert!(ldc >= NR, "C row stride below tile width");
    assert!(c.len() >= (MR - 1) * ldc + NR, "C tile out of bounds");
    // SAFETY: this entry is dispatched only after runtime detection of NEON
    // (iwino_simd::kernels); the asserts above bound every offset the
    // kernel derives — `a[kk·MR + r]` and `b[kk·NR + j]` for `kk < kc`, and
    // `c[r·ldc + j]` for `r < MR`, `j < NR`.
    unsafe { tile_6x16_impl(kc, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), ldc) }
}

// SAFETY: (caller contract) callers must ensure NEON support, readability
// of `a[..kc*MR]` and `b[..kc*NR]`, and writability of `c[r*ldc ..][..NR]`
// for every `r < MR` — asserted by the wrapper above.
#[target_feature(enable = "neon")]
unsafe fn tile_6x16_impl(kc: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    let mut acc = [[vdupq_n_f32(0.0); 4]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        let cr = c.add(r * ldc);
        row[0] = vld1q_f32(cr);
        row[1] = vld1q_f32(cr.add(4));
        row[2] = vld1q_f32(cr.add(8));
        row[3] = vld1q_f32(cr.add(12));
    }
    for kk in 0..kc {
        let bk = b.add(kk * NR);
        let b0 = vld1q_f32(bk);
        let b1 = vld1q_f32(bk.add(4));
        let b2 = vld1q_f32(bk.add(8));
        let b3 = vld1q_f32(bk.add(12));
        let ak = a.add(kk * MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av = vdupq_n_f32(*ak.add(r));
            row[0] = vaddq_f32(row[0], vmulq_f32(av, b0));
            row[1] = vaddq_f32(row[1], vmulq_f32(av, b1));
            row[2] = vaddq_f32(row[2], vmulq_f32(av, b2));
            row[3] = vaddq_f32(row[3], vmulq_f32(av, b3));
        }
    }
    for (r, row) in acc.iter().enumerate() {
        let cr = c.add(r * ldc);
        vst1q_f32(cr, row[0]);
        vst1q_f32(cr.add(4), row[1]);
        vst1q_f32(cr.add(8), row[2]);
        vst1q_f32(cr.add(12), row[3]);
    }
}
