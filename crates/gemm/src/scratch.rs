//! Scratch-buffer provisioning for GEMM packing and im2col patch gathers.
//!
//! The packed-GEMM macro kernel needs per-worker panel buffers, and the
//! GEMM-class convolutions need a per-worker patch buffer (`OW×K` floats)
//! for every output row. Where those buffers come from is a policy decision
//! that belongs to the caller: a standalone benchmark is happy to allocate,
//! while a serving engine wants buffers recycled through an arena so
//! steady-state inference does zero heap allocation. [`ScratchProvider`]
//! abstracts the difference — `iwino-engine`'s workspace pool implements it
//! over its arena, and [`AllocScratch`] preserves the plain-allocation
//! behaviour for direct callers.

/// Source of temporary f32 buffers for GEMM and convolution internals.
///
/// Implementations must be `Sync`: workers check buffers out concurrently
/// from inside `iwino_parallel` jobs.
pub trait ScratchProvider: Sync {
    /// A zero-filled buffer of exactly `len` elements.
    fn checkout(&self, len: usize) -> Vec<f32>;

    /// Hand a buffer back for reuse. The default implementation drops it.
    fn give_back(&self, _buf: Vec<f32>) {}
}

/// The no-pooling provider: every checkout is a fresh allocation and every
/// give-back a deallocation.
pub struct AllocScratch;

impl ScratchProvider for AllocScratch {
    fn checkout(&self, len: usize) -> Vec<f32> {
        vec![0.0; len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_scratch_returns_zeroed_buffers() {
        let s = AllocScratch;
        let b = s.checkout(17);
        assert_eq!(b.len(), 17);
        assert!(b.iter().all(|&v| v == 0.0));
        s.give_back(b);
    }
}
