//! AVX2 6×16 register-tile microkernel (x86-64, 8-lane `__m256`).
//!
//! Register budget: 6 rows × 2 ymm accumulators = 12, plus two B loads and
//! one A broadcast per k step — 15 of the 16 ymm registers, the classic
//! 6×16 occupancy for this file size.
//!
//! Bit-exactness contract: separate `vmulps`/`vaddps` (never a fused
//! multiply-add, despite the `avx2+fma` dispatch gate) in the scalar
//! kernel's per-element accumulation order, so results are bitwise
//! identical to [`crate::scalar::tile_6x16`]. Packed panels are always full
//! `MR`/`NR` groups (the packers zero-pad edges), so no masked tails are
//! needed here.
//!
//! Safety structure mirrors `iwino-simd`'s kernels: the public safe wrapper
//! asserts every bound, the private `unsafe` kernel does the pointer work,
//! and the wrapper is only dispatched after runtime AVX2 detection
//! (`iwino_simd::kernels().isa == Isa::Avx2Fma`).

use crate::{MR, NR};
use core::arch::x86_64::*;

/// Safe dispatch entry with [`crate::scalar::tile_6x16`] semantics:
/// `C[MR×NR] += Aᵖ[kc×MR] · Bᵖ[kc×NR]`, accumulators initialized from C.
pub(crate) fn tile_6x16(kc: usize, a: &[f32], b: &[f32], c: &mut [f32], ldc: usize) {
    assert!(a.len() >= kc * MR, "A micro-panel too short");
    assert!(b.len() >= kc * NR, "B micro-panel too short");
    assert!(ldc >= NR, "C row stride below tile width");
    assert!(c.len() >= (MR - 1) * ldc + NR, "C tile out of bounds");
    // SAFETY: this entry is dispatched only after runtime detection of
    // AVX2+FMA (iwino_simd::kernels); the asserts above bound every offset
    // the kernel derives — `a[kk·MR + r]` and `b[kk·NR + j]` for `kk < kc`,
    // and `c[r·ldc + j]` for `r < MR`, `j < NR`.
    unsafe { tile_6x16_impl(kc, a.as_ptr(), b.as_ptr(), c.as_mut_ptr(), ldc) }
}

// SAFETY: (caller contract) callers must ensure AVX2 support, readability
// of `a[..kc*MR]` and `b[..kc*NR]`, and writability of `c[r*ldc ..][..NR]`
// for every `r < MR` — asserted by the wrapper above.
#[target_feature(enable = "avx2,fma")]
unsafe fn tile_6x16_impl(kc: usize, a: *const f32, b: *const f32, c: *mut f32, ldc: usize) {
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row[0] = _mm256_loadu_ps(c.add(r * ldc));
        row[1] = _mm256_loadu_ps(c.add(r * ldc + 8));
    }
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(b.add(kk * NR));
        let b1 = _mm256_loadu_ps(b.add(kk * NR + 8));
        let ak = a.add(kk * MR);
        for (r, row) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ak.add(r));
            row[0] = _mm256_add_ps(row[0], _mm256_mul_ps(av, b0));
            row[1] = _mm256_add_ps(row[1], _mm256_mul_ps(av, b1));
        }
    }
    for (r, row) in acc.iter().enumerate() {
        _mm256_storeu_ps(c.add(r * ldc), row[0]);
        _mm256_storeu_ps(c.add(r * ldc + 8), row[1]);
    }
}
