//! Packed, register-blocked single-precision GEMM: `C = A·B (+ C)`.
//!
//! Row-major everywhere. This is the one real GEMM behind every backend in
//! the tree — the im2col baselines (NHWC and NCHW) and Im2col-Winograd's
//! boundary-treatment segments (§5.5: "GEMM convolution processes the
//! final remaining segment") all route here.
//!
//! The structure is the classic Goto blocking:
//!
//! ```text
//! for jc in 0..n step NC            # B column block     (L3-resident)
//!   for pc in 0..k step KC          # K chunk            (packed panels in L2/L1)
//!     pack A[ic-block, pc-chunk] → MR-row micro-panels   (k-major, zero-padded)
//!     for q: NR-col panels of B[pc-chunk, jc-block]      (packed once per call/plan)
//!       for p: MR-row panels of the A block
//!         microkernel: C[6×16] += Aᵖ[kc×6] · Bᵖ[kc×16]
//! ```
//!
//! with the `ic` loop over `MC`-row blocks of `C` parallelized through
//! [`iwino_parallel::SliceParts`] — each task owns a disjoint row block of
//! `C`, so there is no row-level broadcast and no cross-task write overlap.
//!
//! The 6×16 register tile (`MR × 2·LANE`) dispatches through the
//! `iwino-simd` one-byte ISA gate: AVX2 holds the tile in 12 ymm
//! accumulators, NEON in 24 q registers, and the safe-scalar kernel is the
//! bit-exactness reference — every lane accumulates each C element in
//! ascending-`k` order with separate (individually rounded) multiply and
//! add, making all three lanes bitwise identical, and the whole blocked
//! GEMM bitwise equal to the naive left-to-right triple loop.
//!
//! Packing buffers come from a caller-provided [`ScratchProvider`], so the
//! serving engine's arena owns them and steady-state calls allocate
//! nothing; `B` can also be packed once at plan time ([`PackedB`]) and
//! reused across calls. The indirect-convolution backend (`iwino-indirect`)
//! rides that seam through [`sgemm_gather_prepacked`]: a [`GatherA`]
//! indirection buffer replaces the materialized patch matrix, and rows are
//! gathered straight into the A micro-panels.

use iwino_obs as obs;
use iwino_parallel as par;

#[cfg(target_arch = "x86_64")]
mod avx2;
#[cfg(target_arch = "aarch64")]
mod neon;
mod scalar;
mod scratch;

pub use scratch::{AllocScratch, ScratchProvider};

/// Register-tile rows: each A micro-panel packs `MR` rows k-major.
pub const MR: usize = 6;
/// Register-tile columns: `2 · iwino_simd::LANE`, fixed across ISAs so the
/// packed layout is ISA-independent (NEON covers it with 4 q registers).
pub const NR: usize = 2 * iwino_simd::LANE;
/// K chunk: one `KC×NR` B panel (16 KiB) stays L1-resident under the
/// streaming A panel.
pub const KC: usize = 256;
/// Row-block height of `C` owned by one parallel task: 12 MR-panels, so a
/// packed `MC×KC` A block is 72 KiB — comfortably L2-resident.
pub const MC: usize = 12 * MR;
/// Column block of `B` (a multiple of `NR`); at the matrix sizes the conv
/// backends produce this loop usually runs exactly once.
pub const NC: usize = 2048;

/// The microkernel signature shared by all ISA lanes:
/// `C[MR×NR] += Aᵖ[kc×MR] · Bᵖ[kc×NR]` with C row stride `ldc`.
type MicroKernel = fn(usize, &[f32], &[f32], &mut [f32], usize);

/// Resolve the register-tile kernel for the currently dispatched ISA. The
/// dispatch byte is `iwino-simd`'s: one relaxed load, same force-scalar
/// override, so `IWINO_FORCE_SCALAR=1` pins this crate to the scalar lane
/// together with the Γ kernels.
fn microkernel() -> MicroKernel {
    match iwino_simd::kernels().isa {
        #[cfg(target_arch = "x86_64")]
        iwino_simd::Isa::Avx2Fma => avx2::tile_6x16,
        #[cfg(target_arch = "aarch64")]
        iwino_simd::Isa::Neon => neon::tile_6x16,
        _ => scalar::tile_6x16,
    }
}

/// Length in floats of the packed image of a `k×n` B matrix.
pub fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

/// Pack row-major `B[k×n]` into NR-column micro-panels, k-major: panel `q`
/// covers columns `[q·NR, (q+1)·NR)` and stores, for each `kk`, the `NR`
/// row values contiguously (`out[q·k·NR + kk·NR + c]`). Edge columns are
/// zero-padded so the microkernel never needs a masked tail; the `pc`-chunk
/// of a panel is the contiguous subslice `[q·k·NR + pc·NR ..][..kc·NR]`.
pub fn pack_b(k: usize, n: usize, b: &[f32], out: &mut [f32]) {
    assert_eq!(b.len(), k * n, "B shape");
    assert!(out.len() >= packed_b_len(k, n), "packed-B buffer too short");
    for q in 0..n.div_ceil(NR) {
        let j0 = q * NR;
        let w = NR.min(n - j0);
        let panel = &mut out[q * k * NR..(q + 1) * k * NR];
        for kk in 0..k {
            let dst = &mut panel[kk * NR..(kk + 1) * NR];
            dst[..w].copy_from_slice(&b[kk * n + j0..kk * n + j0 + w]);
            dst[w..].fill(0.0);
        }
    }
}

/// `B` packed once, reused across calls — the plan-time form the engine
/// caches next to its transformed filters (cuDNN's "precomp" covers the
/// filter too), and the conv plans hold for their HWIO filter matrices.
pub struct PackedB {
    k: usize,
    n: usize,
    data: Vec<f32>,
}

impl PackedB {
    /// Pack row-major `b[k×n]`.
    pub fn pack(k: usize, n: usize, b: &[f32]) -> Self {
        let _p = obs::span(obs::Stage::GemmPack);
        let mut data = vec![0.0f32; packed_b_len(k, n)];
        pack_b(k, n, b, &mut data);
        obs::add(obs::Counter::GemmPackedBBytes, (data.len() * 4) as u64);
        PackedB { k, n, data }
    }

    pub fn k(&self) -> usize {
        self.k
    }

    pub fn n(&self) -> usize {
        self.n
    }

    /// The packed panels (layout documented on [`pack_b`]).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Resident size, for plan-cache accounting.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * 4
    }
}

/// Sentinel entry in a [`GatherA`] offset table: the whole tap reads the
/// zero row (an output pixel whose receptive field lies in the padding).
pub const GATHER_PAD: usize = usize::MAX;

/// An implicit `A[m×k]` described by an indirection table instead of a
/// materialized matrix — the indirect-convolution form (Dukhan): logical
/// row `i` is the concatenation of `taps` segments of `seg` contiguous
/// floats, segment `t` starting at
/// `base[(i / rows_per_block) · block_stride + offsets[(i % rows_per_block) · taps + t]]`
/// (or all zeros when the offset is [`GATHER_PAD`]). Offsets are
/// block-relative float indices, so one `rows_per_block × taps` table
/// serves every block — for NHWC convolution a block is one image,
/// `rows_per_block = OH·OW`, `block_stride = IH·IW·IC`, `seg = IC`, and
/// every segment is a contiguous channel vector.
pub struct GatherA<'a> {
    /// Backing storage the offsets index into (e.g. the whole NHWC input).
    pub base: &'a [f32],
    /// `rows_per_block × taps` block-relative float offsets, row-major.
    pub offsets: &'a [usize],
    /// Segments per logical row (`FH·FW` for convolution).
    pub taps: usize,
    /// Contiguous floats per segment (`IC`); `k = taps · seg`.
    pub seg: usize,
    /// Logical rows covered by one pass over the offset table (`OH·OW`).
    pub rows_per_block: usize,
    /// Float stride between consecutive blocks of `base` (`IH·IW·IC`).
    pub block_stride: usize,
}

impl GatherA<'_> {
    /// The K dimension of the implicit matrix.
    pub fn k(&self) -> usize {
        self.taps * self.seg
    }
}

/// The A operand of the blocked driver: either a materialized row-major
/// matrix or an indirected [`GatherA`]. Both pack into identical MR-row
/// k-major micro-panels, so the microkernel loops downstream are shared —
/// the gathered path is bitwise equal to running the dense path on the
/// materialized patch matrix by construction.
enum ASource<'a> {
    Dense { a: &'a [f32], k: usize },
    Gather(&'a GatherA<'a>),
}

impl ASource<'_> {
    fn k(&self) -> usize {
        match self {
            ASource::Dense { k, .. } => *k,
            ASource::Gather(g) => g.k(),
        }
    }

    /// Pack the `[i0, i0+mb)` row slice, K chunk `[pc, pc+kc)`, into MR-row
    /// micro-panels, k-major: `out[p·kc·MR + kk·MR + r]`, with edge rows
    /// zero-padded.
    fn pack_block(&self, i0: usize, mb: usize, pc: usize, kc: usize, out: &mut [f32]) {
        match self {
            ASource::Dense { a, k } => pack_a_block(a, *k, i0, mb, pc, kc, out),
            ASource::Gather(g) => pack_gather_block(g, i0, mb, pc, kc, out),
        }
    }
}

/// Pack the `[i0, i0+mb)` row slice of `A[·×k]`, K chunk `[pc, pc+kc)`,
/// into MR-row micro-panels, k-major: `out[p·kc·MR + kk·MR + r]`, with edge
/// rows zero-padded.
fn pack_a_block(a: &[f32], k: usize, i0: usize, mb: usize, pc: usize, kc: usize, out: &mut [f32]) {
    for p in 0..mb.div_ceil(MR) {
        let r0 = p * MR;
        let h = MR.min(mb - r0);
        let panel = &mut out[p * kc * MR..(p + 1) * kc * MR];
        if h < MR {
            panel.fill(0.0);
        }
        for r in 0..h {
            let row = i0 + r0 + r;
            let src = &a[row * k + pc..row * k + pc + kc];
            for (kk, &v) in src.iter().enumerate() {
                panel[kk * MR + r] = v;
            }
        }
    }
}

/// [`pack_a_block`] for a [`GatherA`]: walk the K chunk tap segment by tap
/// segment, copying each contiguous `seg`-float run (or zeros for
/// [`GATHER_PAD`]) into the k-major panel. The patch matrix is never
/// materialized — rows go straight from `base` into the micro-panels.
fn pack_gather_block(g: &GatherA<'_>, i0: usize, mb: usize, pc: usize, kc: usize, out: &mut [f32]) {
    let seg = g.seg;
    for p in 0..mb.div_ceil(MR) {
        let r0 = p * MR;
        let h = MR.min(mb - r0);
        let panel = &mut out[p * kc * MR..(p + 1) * kc * MR];
        if h < MR {
            panel.fill(0.0);
        }
        for r in 0..h {
            let row = i0 + r0 + r;
            let base = &g.base[(row / g.rows_per_block) * g.block_stride..];
            let offs = &g.offsets[(row % g.rows_per_block) * g.taps..][..g.taps];
            let mut kk = 0;
            let mut t = pc / seg;
            let mut c0 = pc % seg; // intra-segment start of the first tap
            while kk < kc {
                let take = (seg - c0).min(kc - kk);
                if offs[t] == GATHER_PAD {
                    for i in 0..take {
                        panel[(kk + i) * MR + r] = 0.0;
                    }
                } else {
                    let src = &base[offs[t] + c0..][..take];
                    for (i, &v) in src.iter().enumerate() {
                        panel[(kk + i) * MR + r] = v;
                    }
                }
                kk += take;
                t += 1;
                c0 = 0;
            }
        }
    }
}

/// The per-task macro kernel: all of `C`'s columns for one `MC`-row block.
/// `cblk` is rows `[i0, i0+mb)` of `C` (`mb×n`, row-major); `a_buf` must
/// hold at least `ceil(mb/MR)·MR·min(KC, k)` floats.
#[allow(clippy::too_many_arguments)] // GEMM operands + block geometry, BLAS-style ordering
fn run_block(
    kern: MicroKernel,
    n: usize,
    src: &ASource<'_>,
    bp: &[f32],
    i0: usize,
    mb: usize,
    cblk: &mut [f32],
    a_buf: &mut [f32],
) {
    let k = src.k();
    let m_panels = mb.div_ceil(MR);
    for pc in (0..k).step_by(KC) {
        let kc = KC.min(k - pc);
        {
            let _p = obs::span(obs::Stage::GemmPack);
            src.pack_block(i0, mb, pc, kc, a_buf);
            obs::add(obs::Counter::GemmPackedABytes, (m_panels * MR * kc * 4) as u64);
        }
        let _g = obs::span(obs::Stage::GemmKernel);
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            // NC is a multiple of NR, so panel boundaries align with jc.
            for q in jc / NR..(jc + nc).div_ceil(NR) {
                let j0 = q * NR;
                let w = NR.min(n - j0);
                let b_panel = &bp[q * k * NR + pc * NR..q * k * NR + (pc + kc) * NR];
                for p in 0..m_panels {
                    let r0 = p * MR;
                    let h = MR.min(mb - r0);
                    let a_panel = &a_buf[p * kc * MR..(p + 1) * kc * MR];
                    if h == MR && w == NR {
                        kern(kc, a_panel, b_panel, &mut cblk[r0 * n + j0..], n);
                    } else {
                        // Edge tile: stage through a full stack tile. Dead
                        // rows/columns multiply zero-padded panel entries,
                        // so the live `h×w` region is exactly what a full
                        // tile would have computed there.
                        let mut tile = [0.0f32; MR * NR];
                        for r in 0..h {
                            let c_row = &cblk[(r0 + r) * n + j0..(r0 + r) * n + j0 + w];
                            tile[r * NR..r * NR + w].copy_from_slice(c_row);
                        }
                        kern(kc, a_panel, b_panel, &mut tile, NR);
                        for r in 0..h {
                            let c_row = &mut cblk[(r0 + r) * n + j0..(r0 + r) * n + j0 + w];
                            c_row.copy_from_slice(&tile[r * NR..r * NR + w]);
                        }
                    }
                }
            }
        }
    }
}

/// Shared blocked driver over an already-packed `B` and a dense or
/// gathered A.
fn gemm_blocked(
    m: usize,
    n: usize,
    src: &ASource<'_>,
    bp: &[f32],
    c: &mut [f32],
    accumulate: bool,
    scratch: &dyn ScratchProvider,
) {
    if m == 0 || n == 0 {
        return;
    }
    let k = src.k();
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    if obs::enabled() {
        // Stamp the metrics document with the dispatched ISA, same as the Γ
        // path in core — GEMM-only runs must also refuse cross-ISA diffs.
        let d = iwino_simd::dispatch_info();
        obs::set_dispatch_report(obs::DispatchReport {
            isa: d.isa.to_string(),
            lane_width: d.lane_width,
            forced_scalar: d.forced_scalar,
            features: d.features.iter().map(|f| f.to_string()).collect(),
        });
    }
    let kern = microkernel();
    let kc_max = KC.min(k);
    let parts = par::SliceParts::new(c, MC * n);
    // Disjoint MC-block ownership: each task claims one row block of C and
    // is the only writer of every column in it. Inside a pool worker (the
    // im2col / Γ-remainder call sites) this degrades to a serial loop.
    par::parallel_for(m.div_ceil(MC), &|blk| {
        let i0 = blk * MC;
        let mb = MC.min(m - i0);
        let cblk = parts.take(blk);
        if !accumulate {
            cblk.fill(0.0);
        }
        let mut a_buf = scratch.checkout(mb.div_ceil(MR) * MR * kc_max);
        run_block(kern, n, src, bp, i0, mb, cblk, &mut a_buf);
        scratch.give_back(a_buf);
    });
}

/// `C[m×n] += A[m×k] · B[k×n]` if `accumulate`, else `C = A·B`, with both
/// packing buffers drawn from `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_scratch(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
    scratch: &dyn ScratchProvider,
) {
    assert_eq!(a.len(), m * k, "A shape");
    assert_eq!(b.len(), k * n, "B shape");
    assert_eq!(c.len(), m * n, "C shape");
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        if !accumulate {
            c.fill(0.0);
        }
        return;
    }
    let mut bp = scratch.checkout(packed_b_len(k, n));
    {
        let _p = obs::span(obs::Stage::GemmPack);
        pack_b(k, n, b, &mut bp);
        obs::add(obs::Counter::GemmPackedBBytes, (packed_b_len(k, n) * 4) as u64);
    }
    gemm_blocked(m, n, &ASource::Dense { a, k }, &bp, c, accumulate, scratch);
    scratch.give_back(bp);
}

/// [`sgemm_scratch`] against a `B` packed ahead of time with [`pack_b`]
/// (e.g. into an arena buffer shared across calls); only the A panels are
/// packed here, drawn from `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn sgemm_packed(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    b_packed: &[f32],
    c: &mut [f32],
    accumulate: bool,
    scratch: &dyn ScratchProvider,
) {
    assert_eq!(a.len(), m * k, "A shape");
    assert!(b_packed.len() >= packed_b_len(k, n), "packed-B buffer too short");
    assert_eq!(c.len(), m * n, "C shape");
    gemm_blocked(m, n, &ASource::Dense { a, k }, b_packed, c, accumulate, scratch);
}

/// [`sgemm_packed`] against a plan-time [`PackedB`].
pub fn sgemm_prepacked(
    m: usize,
    a: &[f32],
    pb: &PackedB,
    c: &mut [f32],
    accumulate: bool,
    scratch: &dyn ScratchProvider,
) {
    sgemm_packed(m, pb.n, pb.k, a, &pb.data, c, accumulate, scratch)
}

/// [`sgemm_prepacked`] with the A operand described by an indirection
/// table instead of a materialized matrix: `C[m×n] (+)= Â[m×k] · B`, where
/// `Â` is the implicit matrix of `g` (see [`GatherA`]). Rows gather from
/// `g.base` straight into the A micro-panels — bitwise equal to
/// materializing `Â` and calling [`sgemm_prepacked`], at constant packing
/// overhead independent of the tap count.
pub fn sgemm_gather_prepacked(
    m: usize,
    g: &GatherA<'_>,
    pb: &PackedB,
    c: &mut [f32],
    accumulate: bool,
    scratch: &dyn ScratchProvider,
) {
    assert_eq!(g.k(), pb.k, "gather K vs packed-B K");
    assert_eq!(c.len(), m * pb.n, "C shape");
    if m > 0 {
        assert!(g.rows_per_block > 0, "gather rows_per_block");
        assert_eq!(g.offsets.len(), g.rows_per_block * g.taps, "gather offset-table shape");
        assert_eq!(m % g.rows_per_block, 0, "m must be whole gather blocks");
    }
    gemm_blocked(m, pb.n, &ASource::Gather(g), &pb.data, c, accumulate, scratch);
}

/// `C[m×n] += A[m×k] · B[k×n]` if `accumulate`, else `C = A·B`. Packing
/// buffers are plain allocations; serving paths use [`sgemm_scratch`].
pub fn sgemm_acc(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32], accumulate: bool) {
    sgemm_scratch(m, n, k, a, b, c, accumulate, &AllocScratch)
}

/// `C = A·B` (row-major, overwrite).
pub fn sgemm(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    sgemm_acc(m, n, k, a, b, c, false);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Naive left-to-right triple loop — the bitwise reference: the packed
    /// kernels accumulate each C element in exactly this order with the
    /// same individually rounded multiply and add.
    fn naive(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = acc;
            }
        }
    }

    /// Deterministic pseudo-random fill (xorshift32), values in [-2, 2].
    fn fill(buf: &mut [f32], seed: u32) {
        let mut s = seed.wrapping_mul(2654435761).max(1);
        for v in buf.iter_mut() {
            s ^= s << 13;
            s ^= s >> 17;
            s ^= s << 5;
            *v = (s as f32 / u32::MAX as f32) * 4.0 - 2.0;
        }
    }

    /// Serialize tests that override the dispatch byte (same convention as
    /// the Γ conformance net).
    fn force_guard() -> MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|p| p.into_inner())
    }

    /// Restore the ambient dispatch (incl. IWINO_FORCE_SCALAR) on drop.
    struct RestoreDispatch;
    impl Drop for RestoreDispatch {
        fn drop(&mut self) {
            iwino_simd::clear_force_override();
        }
    }

    fn check_bitwise(m: usize, n: usize, k: usize, seed: u32) {
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill(&mut a, seed);
        fill(&mut b, seed.wrapping_add(1));
        let mut c = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        sgemm(m, n, k, &a, &b, &mut c);
        naive(m, n, k, &a, &b, &mut want);
        for (i, (x, y)) in c.iter().zip(&want).enumerate() {
            assert!(
                x.to_bits() == y.to_bits(),
                "({m}x{n}x{k}) idx {i}: {x:?} vs naive {y:?}"
            );
        }
    }

    #[test]
    fn identity_matrix() {
        let n = 16;
        let mut eye = vec![0.0f32; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let b: Vec<f32> = (0..n * n).map(|i| i as f32 * 0.1).collect();
        let mut c = vec![0.0f32; n * n];
        sgemm(n, n, n, &eye, &b, &mut c);
        assert_eq!(c, b);
    }

    #[test]
    fn accumulate_adds_on_top() {
        let a = [1.0f32, 2.0];
        let b = [3.0f32, 4.0];
        let mut c = [10.0f32];
        sgemm_acc(1, 1, 2, &a, &b, &mut c, true);
        assert_eq!(c[0], 10.0 + 11.0);
        sgemm_acc(1, 1, 2, &a, &b, &mut c, false);
        assert_eq!(c[0], 11.0);
    }

    #[test]
    fn degenerate_dims() {
        let mut c = vec![7.0f32; 4];
        sgemm(2, 2, 0, &[], &[], &mut c);
        assert_eq!(c, vec![0.0; 4]);
        sgemm(0, 0, 5, &[], &[], &mut []);
    }

    #[test]
    fn bitwise_matches_naive_across_block_boundaries() {
        // m straddling MR and MC, n straddling NR, k straddling KC.
        check_bitwise(MC + MR + 1, NR + 3, KC + 5, 7);
        check_bitwise(MR - 1, 2 * NR, 2, 8);
        check_bitwise(1, 1, 1, 9);
    }

    #[test]
    fn prepacked_b_matches_per_call_packing() {
        let (m, n, k) = (2 * MR + 1, NR + 5, 33);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill(&mut a, 21);
        fill(&mut b, 22);
        let pb = PackedB::pack(k, n, &b);
        assert_eq!(pb.k(), k);
        assert_eq!(pb.n(), n);
        assert_eq!(pb.resident_bytes(), packed_b_len(k, n) * 4);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        sgemm(m, n, k, &a, &b, &mut c1);
        sgemm_prepacked(m, &a, &pb, &mut c2, false, &AllocScratch);
        assert_eq!(c1, c2);
        // Accumulation on top of an existing C: bitwise equal to folding
        // the products onto C in ascending-k order (not to `2·c1`, which
        // rounds differently).
        let mut c3 = c1.clone();
        sgemm_prepacked(m, &a, &pb, &mut c3, true, &AllocScratch);
        let mut want = c1.clone();
        for i in 0..m {
            for j in 0..n {
                let mut acc = want[i * n + j];
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                want[i * n + j] = acc;
            }
        }
        for (x, y) in c3.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Materialize the implicit matrix of a [`GatherA`] (the patch matrix
    /// im2col would have built) — the reference the gathered path must be
    /// bitwise equal to.
    fn materialize(g: &GatherA<'_>, m: usize) -> Vec<f32> {
        let k = g.k();
        let mut a = vec![0.0f32; m * k];
        for row in 0..m {
            let base = &g.base[(row / g.rows_per_block) * g.block_stride..];
            let offs = &g.offsets[(row % g.rows_per_block) * g.taps..][..g.taps];
            for (t, &off) in offs.iter().enumerate() {
                if off != GATHER_PAD {
                    a[row * k + t * g.seg..row * k + (t + 1) * g.seg].copy_from_slice(&base[off..off + g.seg]);
                }
            }
        }
        a
    }

    /// A gather geometry exercising the K-chunk walker: `seg` not dividing
    /// KC (chunks split mid-segment), PAD taps, multiple blocks, and edge
    /// `m`/`n` tiles.
    fn sample_gather(base: &[f32], offsets: &mut Vec<usize>, taps: usize, seg: usize, rows: usize) -> usize {
        offsets.clear();
        let block_stride = base.len() / 2; // two blocks
        for row in 0..rows {
            for t in 0..taps {
                if (row + t) % 5 == 0 {
                    offsets.push(GATHER_PAD);
                } else {
                    // Any in-bounds segment start; vary with row and tap.
                    offsets.push((row * 31 + t * 7) % (block_stride - seg));
                }
            }
        }
        block_stride
    }

    #[test]
    fn gather_bitwise_matches_materialized_dense() {
        // K straddles KC with seg not dividing KC, so chunk boundaries land
        // mid-segment; m straddles MR and the block boundary; n has an edge
        // panel.
        let (taps, seg, rows) = (9, 37, MR * 3 + 2); // k = 333 > KC
        let k = taps * seg;
        let n = NR + 5;
        let m = 2 * rows;
        let mut base = vec![0.0f32; 4096];
        fill(&mut base, 51);
        let mut offsets = Vec::new();
        let block_stride = sample_gather(&base, &mut offsets, taps, seg, rows);
        let g = GatherA {
            base: &base,
            offsets: &offsets,
            taps,
            seg,
            rows_per_block: rows,
            block_stride,
        };
        let mut b = vec![0.0f32; k * n];
        fill(&mut b, 52);
        let pb = PackedB::pack(k, n, &b);
        let a = materialize(&g, m);
        let mut want = vec![0.0f32; m * n];
        sgemm_prepacked(m, &a, &pb, &mut want, false, &AllocScratch);
        let mut got = vec![0.0f32; m * n];
        sgemm_gather_prepacked(m, &g, &pb, &mut got, false, &AllocScratch);
        for (i, (x, y)) in got.iter().zip(&want).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "idx {i}: {x:?} vs dense {y:?}");
        }
        // Accumulation folds onto C exactly like the dense path.
        sgemm_prepacked(m, &a, &pb, &mut want, true, &AllocScratch);
        sgemm_gather_prepacked(m, &g, &pb, &mut got, true, &AllocScratch);
        for (x, y) in got.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn gather_all_pad_rows_yield_zero_output() {
        let (taps, seg, rows) = (4, 3, MR + 1);
        let k = taps * seg;
        let n = 7;
        let base = vec![1.5f32; 64];
        let offsets = vec![GATHER_PAD; rows * taps];
        let g = GatherA {
            base: &base,
            offsets: &offsets,
            taps,
            seg,
            rows_per_block: rows,
            block_stride: 0,
        };
        let mut b = vec![0.0f32; k * n];
        fill(&mut b, 53);
        let pb = PackedB::pack(k, n, &b);
        let mut c = vec![9.0f32; rows * n];
        sgemm_gather_prepacked(rows, &g, &pb, &mut c, false, &AllocScratch);
        assert!(c.iter().all(|&v| v == 0.0), "padded rows must read the zero row");
    }

    #[test]
    fn gather_scalar_lane_bitwise_matches_native() {
        let _g = force_guard();
        let (taps, seg, rows) = (5, 11, MR + 3);
        let k = taps * seg;
        let n = 2 * NR - 3;
        let m = 2 * rows;
        let mut base = vec![0.0f32; 1024];
        fill(&mut base, 61);
        let mut offsets = Vec::new();
        let block_stride = sample_gather(&base, &mut offsets, taps, seg, rows);
        let ga = GatherA {
            base: &base,
            offsets: &offsets,
            taps,
            seg,
            rows_per_block: rows,
            block_stride,
        };
        let mut b = vec![0.0f32; k * n];
        fill(&mut b, 62);
        let pb = PackedB::pack(k, n, &b);
        let mut native = vec![0.0f32; m * n];
        sgemm_gather_prepacked(m, &ga, &pb, &mut native, false, &AllocScratch);
        let mut scalar_out = vec![0.0f32; m * n];
        {
            let _r = RestoreDispatch;
            iwino_simd::set_force_scalar(true);
            sgemm_gather_prepacked(m, &ga, &pb, &mut scalar_out, false, &AllocScratch);
        }
        for (i, (x, y)) in native.iter().zip(&scalar_out).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "idx {i}: {x:?} vs scalar {y:?}");
        }
    }

    #[test]
    fn nonfinite_inputs_propagate_like_naive() {
        // 0·∞ and 0·NaN must reach C (the seed kernel's zero-skip dropped
        // them); the packed path performs the naive op sequence, so even
        // the NaN bit patterns agree.
        let (m, n, k) = (MR + 1, NR + 1, 4);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill(&mut a, 31);
        fill(&mut b, 32);
        a[0] = 0.0;
        b[0] = f32::INFINITY;
        a[k] = f32::NAN;
        b[n] = 0.0;
        a[2 * k + 1] = f32::NEG_INFINITY;
        let mut c = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        sgemm(m, n, k, &a, &b, &mut c);
        naive(m, n, k, &a, &b, &mut want);
        assert!(want.iter().any(|v| v.is_nan()), "test must exercise a NaN product");
        for (x, y) in c.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits(), "{x:?} vs naive {y:?}");
        }
    }

    #[test]
    fn scalar_lane_bitwise_matches_native() {
        let _g = force_guard();
        let (m, n, k) = (MC + 5, 2 * NR + 7, KC + 3);
        let mut a = vec![0.0f32; m * k];
        let mut b = vec![0.0f32; k * n];
        fill(&mut a, 41);
        fill(&mut b, 42);
        let mut native = vec![0.0f32; m * n];
        sgemm(m, n, k, &a, &b, &mut native);
        let mut scalar_out = vec![0.0f32; m * n];
        {
            let _r = RestoreDispatch;
            iwino_simd::set_force_scalar(true);
            sgemm(m, n, k, &a, &b, &mut scalar_out);
        }
        for (i, (x, y)) in native.iter().zip(&scalar_out).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "idx {i}: {x:?} vs scalar {y:?}");
        }
    }

    #[test]
    fn scalar_lane_bitwise_sweep_over_edge_tiles() {
        let _g = force_guard();
        // Every m (mod MR) and n (mod NR) residue class near a boundary,
        // including m < MR and k = 1.
        for (m, n, k) in [
            (1, 1, 1),
            (MR - 1, NR - 1, 1),
            (MR, NR, KC),
            (MR + 1, NR + 1, KC + 1),
            (2 * MR + 3, 3 * NR - 5, 17),
            (MC, NR, KC),
            (MC + 1, NR + 9, 2 * KC + 1),
        ] {
            let mut a = vec![0.0f32; m * k];
            let mut b = vec![0.0f32; k * n];
            fill(&mut a, (m * 31 + n * 7 + k) as u32);
            fill(&mut b, (m * 13 + n * 3 + k) as u32);
            let mut native = vec![0.0f32; m * n];
            sgemm(m, n, k, &a, &b, &mut native);
            let mut scalar_out = vec![0.0f32; m * n];
            {
                let _r = RestoreDispatch;
                iwino_simd::set_force_scalar(true);
                sgemm(m, n, k, &a, &b, &mut scalar_out);
            }
            for (i, (x, y)) in native.iter().zip(&scalar_out).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "({m}x{n}x{k}) idx {i}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Edge-geometry net: m/n/k drawn to straddle the MR, NR, KC and MC
        /// boundaries (including m < MR and k = 1); every element must be
        /// bitwise equal to the naive reference.
        #[test]
        fn packed_panels_bitwise_match_naive(
            dm in 0usize..(2 * MR + 1),
            mi in 0usize..4,
            dn in 0usize..(NR + 1),
            ni in 0usize..3,
            dk in 0usize..3usize,
            ki in 0usize..3,
            seed in 0u32..1000,
        ) {
            let m = [1usize, MR, MC, MC + MR][mi] + dm;
            let n = [1usize, NR, 2 * NR][ni] + dn;
            let k = [1usize, KC - 1, KC][ki] + dk;
            let mut a = vec![0.0f32; m * k];
            let mut b = vec![0.0f32; k * n];
            fill(&mut a, seed);
            fill(&mut b, seed.wrapping_add(1));
            let mut c = vec![0.0f32; m * n];
            let mut want = vec![0.0f32; m * n];
            sgemm(m, n, k, &a, &b, &mut c);
            naive(m, n, k, &a, &b, &mut want);
            for (i, (x, y)) in c.iter().zip(&want).enumerate() {
                prop_assert_eq!(x.to_bits(), y.to_bits(), "({}x{}x{}) idx {}", m, n, k, i);
            }
        }
    }
}
