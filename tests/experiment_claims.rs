//! End-to-end checks of the paper's headline experimental claims, at
//! CI-friendly scale. EXPERIMENTS.md records the full-size counterparts.

use im2col_winograd::baselines::{direct_conv_f64_ref, im2col_conv_nhwc, Im2colPlan};
use im2col_winograd::core::{conv2d_opts, ConvOptions, GammaSpec, Variant};
use im2col_winograd::gpu_sim::model::{Algorithm, Layout};
use im2col_winograd::gpu_sim::DeviceSpec;
use im2col_winograd::tensor::{ConvShape, ErrorStats, Tensor4};

/// Table 3's error ordering: Γ8 ≈ 1e-7, Γ16 ≈ 1e-5, both beating the f32
/// GEMM, on the paper's uniform-[1,2) inputs.
#[test]
fn accuracy_orders_match_table3() {
    let check = |alpha: usize, n: usize, r: usize, bound: f64| {
        let spec = GammaSpec::new(alpha, n, r, Variant::Standard);
        let hw = 2 * n; // OW multiple of n: no boundary treatment (§6.2.1)
        let shape = ConvShape::square(2, hw, 32, 32, r);
        let x = Tensor4::<f32>::random(shape.x_dims(), 1, 1.0, 2.0);
        let w = Tensor4::<f32>::random(shape.w_dims(), 2, 1.0, 2.0);
        let truth = direct_conv_f64_ref(&x, &w, &shape);
        let opts = ConvOptions {
            force_kernels: Some(vec![spec]),
            ..Default::default()
        };
        let gamma_err = ErrorStats::between(&conv2d_opts(&x, &w, &shape, &opts), &truth).mean;
        let plan = Im2colPlan::new(&shape);
        let gemm_err = ErrorStats::between(&im2col_conv_nhwc(&x, &w, &plan), &truth).mean;
        assert!(gamma_err < bound, "Γ{alpha}({n},{r}) err {gamma_err}");
        // The paper's cuDNN GEMM carries 1e-5-class errors, so every Γ beats
        // it; our own im2col+GEMM accumulates more tightly (~1e-7), so the
        // "beats GEMM" relation only holds for the Γ8 kernels here (see
        // EXPERIMENTS.md, Experiment 2 divergence note).
        if alpha == 8 {
            assert!(
                gamma_err < gemm_err,
                "Γ{alpha}({n},{r}): {gamma_err} !< gemm {gemm_err}"
            );
        }
        gamma_err
    };
    let g8 = check(8, 6, 3, 5e-6);
    let g16 = check(16, 8, 9, 1e-4);
    // "Γ16(n,r) has a lower accuracy compared to Γ8(n,r)" (§6.2.2).
    assert!(g16 > g8, "expected Γ16 ({g16}) less accurate than Γ8 ({g8})");
}

/// Table 2's qualitative content on the simulated devices: the Γ kernels
/// beat the NHWC GEMM on the bulk of shapes, and Γ16 posts the biggest
/// speedups.
#[test]
fn simulated_speedups_match_table2_shape() {
    let dev = DeviceSpec::rtx3060ti();
    let speedup = |alpha: usize, n: usize, r: usize, ofms: (usize, usize, usize, usize)| {
        let (b, oh, ow, oc) = ofms;
        let shape = ConvShape::from_ofms(b, oh, ow, oc, oc, r);
        let spec = GammaSpec::new(alpha, n, r, Variant::Standard);
        let g = im2col_winograd::gpu_sim::estimate(
            &dev,
            &shape,
            &Algorithm::Gamma {
                spec,
                include_transpose: true,
            },
        );
        let base = im2col_winograd::gpu_sim::estimate(&dev, &shape, &Algorithm::ImplicitGemm { layout: Layout::Nhwc });
        g.gflops / base.gflops
    };
    // Γ8(6,3) on a mid-size Figure 8 shape: paper reports 0.960–1.358×.
    let s63 = speedup(8, 6, 3, (128, 48, 48, 128));
    assert!(s63 > 0.9 && s63 < 3.0, "Γ8(6,3) speedup {s63}");
    // Γ16(9,8): the paper's best range, 1.445–2.233×. Must beat Γ8's.
    let s98 = speedup(16, 9, 8, (128, 36, 36, 64));
    assert!(s98 > s63, "Γ16(9,8) {s98} should beat Γ8(6,3) {s63}");
    // Γ8(7,2): the paper's weakest (0.788–1.034×) — allowed to lose.
    let s72 = speedup(8, 7, 2, (128, 56, 56, 128));
    assert!(s72 < s98, "Γ8(7,2) {s72} should be the weak one vs {s98}");
}

/// §6.1.2 symmetry: Γ8(n,r) and Γ8(r,n) have the same theoretical
/// acceleration; the memory-access-driven ordering puts Γ8(6,3) between the
/// ruse'd Γ8(3,6) and the plain Γ8(3,6).
#[test]
fn phi_symmetry_and_variant_ordering() {
    let phi = |n: usize, r: usize| GammaSpec::new(n + r - 1, n, r, Variant::Standard).phi();
    assert_eq!(phi(6, 3), phi(3, 6));
    assert_eq!(phi(4, 5), phi(5, 4));
    assert_eq!(phi(2, 7), phi(7, 2));
    use im2col_winograd::gpu_sim::model::arithmetic_intensity;
    // Γ8^ruse(3,6) loads less than Γ8(3,6): higher intensity.
    assert!(arithmetic_intensity(8, 6, 64, 32, true) > arithmetic_intensity(8, 6, 64, 32, false));
}

/// The CPU implementation's own headline: Winograd beats the GEMM baseline
/// on a representative Γ8(6,3) layer (measured, release-or-debug agnostic —
/// asserted loosely).
#[test]
fn cpu_winograd_not_slower_than_gemm_class() {
    let shape = ConvShape::square(2, 24, 32, 32, 3);
    let x = Tensor4::<f32>::random(shape.x_dims(), 3, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 4, -1.0, 1.0);
    use std::time::Instant;
    let opts = ConvOptions::default();
    let _ = conv2d_opts(&x, &w, &shape, &opts);
    let t0 = Instant::now();
    for _ in 0..3 {
        let _ = conv2d_opts(&x, &w, &shape, &opts);
    }
    let wino = t0.elapsed();
    let plan = Im2colPlan::new(&shape);
    let _ = im2col_conv_nhwc(&x, &w, &plan);
    let t0 = Instant::now();
    for _ in 0..3 {
        let _ = im2col_conv_nhwc(&x, &w, &plan);
    }
    let gemm = t0.elapsed();
    // Loose: don't fail CI on noise; winograd should be within 2x either way
    // and usually faster (the repro harness measures this properly).
    assert!(wino < gemm * 2, "winograd {wino:?} vs gemm {gemm:?}");
}

/// The boundary planner's promise: the GEMM remainder never exceeds the
/// smallest tile, so Winograd coverage approaches 1 for realistic widths.
#[test]
fn winograd_coverage_is_high_for_cnn_widths() {
    use im2col_winograd::core::{default_kernel_prefs, SegmentPlan};
    for r in 2..=9usize {
        let prefs = default_kernel_prefs(r, r >= 7);
        for ow in [7usize, 14, 28, 56, 112, 224] {
            let plan = SegmentPlan::build(ow, &prefs);
            let cov = plan.winograd_coverage();
            assert!(cov >= 0.5 || ow < 8, "r={r} ow={ow}: coverage {cov}");
        }
    }
}
