//! Integration tests for the §4.2 ND extension: the 3-D path must reduce to
//! the 2-D path when the extra dimension is trivial, and hold up under the
//! same correctness regime.

use im2col_winograd::core::nd::{conv3d, conv3d_opts, direct_conv3d_f64};
use im2col_winograd::core::{conv2d, ConvOptions, GammaSpec, Variant};
use im2col_winograd::tensor::{Conv3dShape, ConvShape, Tensor4, Tensor5};
use proptest::prelude::*;

/// `conv3d` with `FD = 1` and a single depth slice must equal `conv2d`.
#[test]
fn depth1_conv3d_equals_conv2d() {
    let (n, hw, ic, oc, r) = (2usize, 14usize, 5usize, 6usize, 3usize);
    let s2 = ConvShape::square(n, hw, ic, oc, r);
    let x2 = Tensor4::<f32>::random(s2.x_dims(), 900, -1.0, 1.0);
    let w2 = Tensor4::<f32>::random(s2.w_dims(), 901, -1.0, 1.0);
    let y2 = conv2d(&x2, &w2, &s2);

    // Same data viewed as a depth-1 volume with FD = 1 and pd = 0.
    let s3 = Conv3dShape {
        n,
        id: 1,
        ih: hw,
        iw: hw,
        ic,
        oc,
        fd: 1,
        fh: r,
        fw: r,
        pd: 0,
        ph: r / 2,
        pw: r / 2,
    };
    let x3 = Tensor5::from_vec(s3.x_dims(), x2.as_slice().to_vec());
    let w3 = Tensor5::from_vec(s3.w_dims(), w2.as_slice().to_vec());
    let y3 = conv3d(&x3, &w3, &s3);
    assert_eq!(y3.dims(), [n, 1, hw, hw, oc]);
    for (a, b) in y3.as_slice().iter().zip(y2.as_slice()) {
        assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "{a} vs {b}");
    }
}

/// Energy check: zero input ⟹ zero output; delta input lights up exactly
/// the filter's 3-D footprint.
#[test]
fn conv3d_delta_footprint() {
    let s = Conv3dShape::cube(1, 7, 1, 1, 3);
    let mut x = Tensor5::<f32>::zeros(s.x_dims());
    *x.at_mut(0, 3, 3, 3, 0) = 1.0;
    let w = Tensor5::<f32>::random(s.w_dims(), 910, 0.5, 1.0);
    let y = conv3d(&x, &w, &s);
    let mut nonzero = 0usize;
    for dz in 0..7 {
        for dy in 0..7 {
            for dx in 0..7 {
                let v = y.at(0, dz, dy, dx, 0);
                let inside = (2..=4).contains(&dz) && (2..=4).contains(&dy) && (2..=4).contains(&dx);
                if inside {
                    assert!(v.abs() > 1e-6, "expected energy at ({dz},{dy},{dx})");
                    nonzero += 1;
                } else {
                    assert!(v.abs() < 1e-6, "leakage at ({dz},{dy},{dx}): {v}");
                }
            }
        }
    }
    assert_eq!(nonzero, 27);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn random_volumes_match_direct(
        dhw in 4usize..9,
        ic in 1usize..5,
        oc in 1usize..5,
        r in 2usize..5,
        seed in 0u64..1000,
    ) {
        prop_assume!(dhw >= r);
        let s = Conv3dShape::cube(1, dhw, ic, oc, r);
        let x = Tensor5::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor5::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let got = conv3d(&x, &w, &s);
        let want = direct_conv3d_f64(&x, &w, &s);
        for (g, t) in got.as_slice().iter().zip(want.as_slice()) {
            prop_assert!(((*g as f64) - t).abs() < 5e-4 * (t.abs() + 1.0), "{g} vs {t}");
        }
    }
}

/// Forcing an α = 16 kernel through the 3-D path works too.
#[test]
fn conv3d_alpha16_kernel() {
    let spec = GammaSpec::new(16, 8, 9, Variant::Standard);
    let opts = ConvOptions {
        force_kernels: Some(vec![spec]),
        ..Default::default()
    };
    let s = Conv3dShape {
        n: 1,
        id: 3,
        ih: 3,
        iw: 16,
        ic: 4,
        oc: 4,
        fd: 3,
        fh: 3,
        fw: 9,
        pd: 1,
        ph: 1,
        pw: 4,
    };
    let x = Tensor5::<f32>::random(s.x_dims(), 920, 1.0, 2.0);
    let w = Tensor5::<f32>::random(s.w_dims(), 921, 1.0, 2.0);
    let got = conv3d_opts(&x, &w, &s, &opts);
    let want = direct_conv3d_f64(&x, &w, &s);
    let mean: f64 = got
        .as_slice()
        .iter()
        .zip(want.as_slice())
        .map(|(&g, &t)| ((g as f64) - t).abs() / t.abs().max(1e-12))
        .sum::<f64>()
        / want.len() as f64;
    assert!(mean < 1e-4, "mean rel err {mean}");
}
