//! Adjointness identities across the forward / backward-data /
//! backward-filter triple — the property that makes gradient descent with
//! these kernels mathematically sound.

use im2col_winograd::core::{conv2d, deconv2d, filter_grad};
use im2col_winograd::nn::conv::backward_data_direct;
use im2col_winograd::tensor::{ConvShape, Tensor4};
use proptest::prelude::*;

fn dot(a: &Tensor4<f32>, b: &Tensor4<f32>) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| x as f64 * y as f64)
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn data_adjointness_winograd(
        hw in 8usize..16,
        c in 1usize..8,
        r in 2usize..8,
        seed in 0u64..1000,
    ) {
        let s = ConvShape::square(1, hw, c, c + 1, r);
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let dy = Tensor4::<f32>::random(s.y_dims(), seed + 2, -1.0, 1.0);
        let lhs = dot(&conv2d(&x, &w, &s), &dy);
        let rhs = dot(&x, &deconv2d(&dy, &w, &s));
        prop_assert!((lhs - rhs).abs() < 2e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn filter_adjointness(
        hw in 6usize..14,
        r in 2usize..6,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let s = ConvShape { sh: stride, sw: stride, ..ConvShape::square(2, hw, 3, 4, r) };
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let dy = Tensor4::<f32>::random(s.y_dims(), seed + 2, -1.0, 1.0);
        let y = im2col_winograd::baselines::direct_conv(&x, &w, &s);
        let dw = filter_grad(&x, &dy, &s);
        let lhs = dot(&y, &dy);
        let rhs = dot(&w, &dw);
        prop_assert!((lhs - rhs).abs() < 2e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn strided_backward_data_adjointness(
        hw in 6usize..14,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let s = ConvShape { sh: stride, sw: stride, ..ConvShape::square(1, hw, 2, 3, 3) };
        let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), seed + 1, -1.0, 1.0);
        let dy = Tensor4::<f32>::random(s.y_dims(), seed + 2, -1.0, 1.0);
        let y = im2col_winograd::baselines::direct_conv(&x, &w, &s);
        let dx = backward_data_direct(&dy, &w, &s);
        let lhs = dot(&y, &dy);
        let rhs = dot(&x, &dx);
        prop_assert!((lhs - rhs).abs() < 2e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }
}

/// The fused-rotation deconvolution must equal the explicit
/// rotate-then-convolve composition.
#[test]
fn fused_rotation_equals_explicit_rotation() {
    for r in 2..=9usize {
        let s = ConvShape::square(1, 14, 3, 5, r);
        let dy = Tensor4::<f32>::random(s.y_dims(), 77 + r as u64, -1.0, 1.0);
        let w = Tensor4::<f32>::random(s.w_dims(), 88 + r as u64, -1.0, 1.0);
        let fused = deconv2d(&dy, &w, &s);
        let wr = im2col_winograd::tensor::rotate_filter_180(&w);
        let bw = ConvShape::unit(s.n, s.oh(), s.ow(), s.oc, s.ic, r, r, r - 1 - s.ph, r - 1 - s.pw);
        let explicit = im2col_winograd::baselines::direct_conv(&dy, &wr, &bw);
        let e = im2col_winograd::tensor::max_mixed_error(&fused, &explicit);
        let tol = if r >= 8 { 1e-2 } else { 5e-4 };
        assert!(e < tol, "r = {r}: {e}");
    }
}
