//! Shape-level checks of the GPU cost model against the paper's §6.1.2
//! narrative, across both simulated devices.

use im2col_winograd::core::{GammaSpec, Variant};
use im2col_winograd::gpu_sim::model::{Algorithm, Layout};
use im2col_winograd::gpu_sim::{estimate, gamma8_block_trace, trace_totals, DeviceSpec};
use im2col_winograd::tensor::ConvShape;

fn gamma(dev: &DeviceSpec, spec: GammaSpec, ofms: (usize, usize, usize, usize)) -> f64 {
    let (n, oh, ow, oc) = ofms;
    let shape = ConvShape::from_ofms(n, oh, ow, oc, oc, spec.r);
    estimate(
        dev,
        &shape,
        &Algorithm::Gamma {
            spec,
            include_transpose: false,
        },
    )
    .gflops
}

/// "Our blocking approach ensures consistent performance, under scenarios
/// of both large feature maps with small channels and small feature maps
/// with large channels" (§6.1.2): across the Figure-8 Γ8(6,3) panel — whose
/// per-shape FLOP counts span more than an order of magnitude — the
/// modelled Gflop/s varies by well under 1.5×. (The paper's instability
/// observations about cuDNN's Fused_Winograd stem from cuDNN-internal
/// heuristics the cost model does not attempt to replicate.)
#[test]
fn gamma_blocking_is_consistent_across_layer_extremes() {
    let dev = DeviceSpec::rtx3060ti();
    let spec = GammaSpec::new(8, 6, 3, Variant::Standard);
    let shapes: [(usize, usize, usize, usize); 10] = [
        (64, 128, 128, 64),
        (128, 96, 96, 64),
        (256, 64, 64, 64),
        (128, 48, 48, 128),
        (256, 32, 32, 128),
        (128, 24, 24, 256),
        (256, 16, 16, 256),
        (128, 12, 12, 512),
        (256, 8, 8, 512),
        (128, 6, 6, 1024),
    ];
    let g: Vec<f64> = shapes.iter().map(|&o| gamma(&dev, spec, o)).collect();
    let spread = g.iter().cloned().fold(f64::MIN, f64::max) / g.iter().cloned().fold(f64::MAX, f64::min);
    assert!(spread < 1.5, "Γ8(6,3) spread across the panel: {spread:.3}");
    // And it beats the NHWC GEMM everywhere on this panel.
    for &(n, oh, ow, oc) in &shapes {
        let shape = ConvShape::from_ofms(n, oh, ow, oc, oc, 3);
        let base = estimate(&dev, &shape, &Algorithm::ImplicitGemm { layout: Layout::Nhwc }).gflops;
        let gg = gamma(&dev, spec, (n, oh, ow, oc));
        assert!(gg > base, "{n}x{oh}x{ow}x{oc}: Γ {gg:.0} vs GEMM {base:.0}");
    }
}

/// Every Figure-8 Γ kernel at its "clean" mid-panel shape should model
/// faster on the 4090 than the 3060 Ti, by a factor below the raw
/// peak-FLOPS ratio (≈ 5.1×) — memory legs bind somewhere.
#[test]
fn cross_device_scaling_is_sublinear_in_peak() {
    let a = DeviceSpec::rtx3060ti();
    let b = DeviceSpec::rtx4090();
    let peak_ratio = b.peak_flops() / a.peak_flops();
    for (alpha, n, r) in [(8usize, 6usize, 3usize), (8, 4, 5), (16, 8, 9)] {
        let spec = GammaSpec::new(alpha, n, r, Variant::Standard);
        let ofms = (128, 8 * n, 8 * n, 128);
        let ga = gamma(&a, spec, ofms);
        let gb = gamma(&b, spec, ofms);
        let ratio = gb / ga;
        assert!(ratio > 1.5, "Γ{alpha}({n},{r}): 4090 should win ({ratio:.2})");
        assert!(
            ratio < 1.05 * peak_ratio,
            "Γ{alpha}({n},{r}): scaling {ratio:.2} vs peak ratio {peak_ratio:.2}"
        );
    }
}

/// The NHWC GEMM loses bandwidth on small channel counts (coalescing), so
/// tiny-IC shapes favour the NCHW layout — and the gap closes at IC ≥ 32.
#[test]
fn nhwc_gemm_coalescing_effect() {
    let dev = DeviceSpec::rtx3060ti();
    let run = |ic: usize, layout: Layout| {
        let shape = ConvShape::square(32, 64, ic, ic, 3);
        estimate(&dev, &shape, &Algorithm::ImplicitGemm { layout }).gflops
    };
    let small_gap = run(4, Layout::Nchw) / run(4, Layout::Nhwc);
    let big_gap = run(128, Layout::Nchw) / run(128, Layout::Nhwc);
    assert!(small_gap > 1.2, "NCHW should win at IC = 4: {small_gap:.2}");
    assert!(big_gap < 1.05, "layouts should tie at IC = 128: {big_gap:.2}");
}

/// The assembled block trace confirms the §5.2 fixes at the whole-iteration
/// level, not just per access pattern.
#[test]
fn block_trace_totals() {
    let (good, good_ideal) = trace_totals(&gamma8_block_trace(true));
    let (bad, _) = trace_totals(&gamma8_block_trace(false));
    assert_eq!(good, good_ideal);
    assert!(bad > good);
}

/// Launch-overhead sanity: a microscopic convolution is overhead-dominated,
/// so its modelled Gflop/s collapses relative to a full-size one.
#[test]
fn launch_overhead_dominates_tiny_shapes() {
    let dev = DeviceSpec::rtx4090();
    let spec = GammaSpec::new(8, 6, 3, Variant::Standard);
    let tiny = gamma(&dev, spec, (1, 6, 6, 16));
    let big = gamma(&dev, spec, (128, 96, 96, 128));
    assert!(big > 20.0 * tiny, "tiny {tiny:.1} vs big {big:.1}");
}
