//! Property-test conformance net for every supported `Γα(n, r)` kernel.
//!
//! The channel-chunk microkernels in `iwino-core::kernel` walk IC/OC in
//! unrolled lanes of `LANE = 8` f32 with a remainder lane for the final
//! partial chunk. These tests force each kernel (no planner heuristics) on
//! channel counts deliberately *not* divisible by 8 — {3, 5, 7, 9, 17} —
//! so every case exercises the remainder lane (and 17 = 2·8 + 1 exercises
//! full lanes *plus* the remainder), and on output widths `OW ∈ [n, 3n]`
//! so exact covers, ±1 raggedness, and the GEMM remainder segment all come
//! up. Agreement is checked against the f64 direct reference.
//!
//! A second net pins the `iwino-simd` dispatch contract: the natively
//! dispatched microkernels (AVX2/NEON) must produce **bitwise identical**
//! outputs to the forced-scalar fallback for every `(n, r)` kernel and
//! every outer-product tail width `oc % LANE ∈ 0..LANE`. On hosts whose
//! native dispatch *is* scalar these tests pass trivially — the SIMD paths
//! are then covered by CI's AVX2 runners.
//!
//! The case budget honours `PROPTEST_CASES` (see `scripts/check.sh`).

use im2col_winograd::baselines::direct_conv_f64_ref;
use im2col_winograd::prelude::*;
use im2col_winograd::simd;
use im2col_winograd::tensor::{max_mixed_error, ErrorStats};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Channel counts that are all coprime-ish with the lane width 8: each one
/// forces the remainder lane, and 17 also runs two full lanes first.
const ODD_CHANNELS: [usize; 5] = [3, 5, 7, 9, 17];

/// Every `(n, r)` the `Γα` family supports for this `α` with `r ∈ 2..=9`:
/// `α = n + r − 1` and output tiles of at least 2.
fn combos(alpha: usize) -> Vec<(usize, usize)> {
    (2..=9)
        .filter_map(|r| {
            let n = (alpha + 1).checked_sub(r)?;
            (n >= 2).then_some((n, r))
        })
        .collect()
}

/// Run one forced-kernel conv against the f64 direct reference.
///
/// `lo..hi` is the input distribution: sign-varying `[-1, 1)` for the
/// well-conditioned α ∈ {4, 8} transforms, the paper's positive `[1, 2)`
/// for α = 16 whose transform entries span ~10 orders of magnitude
/// (§6.2.2 conditioning).
#[allow(clippy::too_many_arguments)]
fn check_forced(alpha: usize, n: usize, r: usize, variant: Variant, ic: usize, oc: usize, ow: usize, seed: u64) {
    let s = ConvShape::square(1, ow, ic, oc, r);
    let (lo, hi) = if alpha == 16 { (1.0, 2.0) } else { (-1.0, 1.0) };
    let x = Tensor4::<f32>::random(s.x_dims(), seed, lo, hi);
    let w = Tensor4::<f32>::random(s.w_dims(), seed ^ 0x9e3779b97f4a7c15, lo, hi);
    let want = direct_conv_f64_ref(&x, &w, &s);
    let opts = ConvOptions {
        force_kernels: Some(vec![GammaSpec::new(alpha, n, r, variant)]),
        ..Default::default()
    };
    let got = conv2d_opts(&x, &w, &s, &opts);
    if alpha == 16 {
        let stats = ErrorStats::between(&got, &want);
        assert!(
            stats.mean < 1e-3,
            "Γ{alpha}(n={n}, r={r}, {variant:?}) ic={ic} oc={oc} ow={ow}: {stats:?}"
        );
    } else {
        let e = max_mixed_error(&got, &want);
        assert!(
            e < 5e-4,
            "Γ{alpha}(n={n}, r={r}, {variant:?}) ic={ic} oc={oc} ow={ow}: error {e}"
        );
    }
}

/// Sweep every combo of one α family for a sampled channel/width/seed case.
fn check_family(alpha: usize, variant: Variant, ici: usize, oci: usize, oww: usize, seed: u64) {
    for (n, r) in combos(alpha) {
        // OW ∈ [n, 3n]: k·n exact covers, k·n ± 1, and GEMM remainders.
        let ow = n + oww % (2 * n + 1);
        check_forced(alpha, n, r, variant, ODD_CHANNELS[ici], ODD_CHANNELS[oci], ow, seed);
    }
}

/// Serialises tests that toggle the process-global microkernel dispatch,
/// and restores the environment-driven default when the guard drops.
fn dispatch_guard() -> (MutexGuard<'static, ()>, RestoreDispatch) {
    static LOCK: Mutex<()> = Mutex::new(());
    (LOCK.lock().unwrap_or_else(|e| e.into_inner()), RestoreDispatch)
}

struct RestoreDispatch;
impl Drop for RestoreDispatch {
    fn drop(&mut self) {
        simd::clear_force_override();
    }
}

/// One forced-kernel conv with the current dispatch, as raw f32 bits.
#[allow(clippy::too_many_arguments)]
fn conv_bits(
    alpha: usize,
    n: usize,
    r: usize,
    variant: Variant,
    ic: usize,
    oc: usize,
    ow: usize,
    seed: u64,
) -> Vec<u32> {
    let s = ConvShape::square(1, ow, ic, oc, r);
    let x = Tensor4::<f32>::random(s.x_dims(), seed, -1.0, 1.0);
    let w = Tensor4::<f32>::random(s.w_dims(), seed ^ 0x9e3779b97f4a7c15, -1.0, 1.0);
    let opts = ConvOptions {
        force_kernels: Some(vec![GammaSpec::new(alpha, n, r, variant)]),
        ..Default::default()
    };
    conv2d_opts(&x, &w, &s, &opts)
        .as_slice()
        .iter()
        .map(|v| v.to_bits())
        .collect()
}

/// Assert native-dispatch output is bitwise identical to forced-scalar.
#[allow(clippy::too_many_arguments)]
fn check_bitwise(alpha: usize, n: usize, r: usize, variant: Variant, ic: usize, oc: usize, ow: usize, seed: u64) {
    let _g = dispatch_guard();
    simd::set_force_scalar(false);
    let native = conv_bits(alpha, n, r, variant, ic, oc, ow, seed);
    simd::set_force_scalar(true);
    let scalar = conv_bits(alpha, n, r, variant, ic, oc, ow, seed);
    assert!(
        native == scalar,
        "Γ{alpha}(n={n}, r={r}, {variant:?}) ic={ic} oc={oc} ow={ow}: {} output is not \
         bit-for-bit identical to forced-scalar",
        simd::native_isa().name()
    );
}

/// Every `(n, r)` kernel × every outer-product tail width: `oc = 8 + t`
/// makes the per-row microkernel run one full lane plus a `t`-wide masked
/// tail (`t = 0` is the exact-lanes case), and `ow = n + 1` makes the
/// segment planner emit both a Γ tile and a ragged boundary.
#[test]
fn simd_matches_scalar_bitwise_every_kernel_and_tail() {
    for alpha in [4usize, 8, 16] {
        for (n, r) in combos(alpha) {
            for tail in 0..8usize {
                check_bitwise(alpha, n, r, Variant::Standard, 5, 8 + tail, n + 1, 7 + tail as u64);
            }
        }
    }
}

/// The ruse and C64 variants share the dispatched microkernels; pin their
/// bit-exactness too, on remainder-lane channel counts.
#[test]
fn simd_matches_scalar_bitwise_variants() {
    for (n, r) in combos(8) {
        check_bitwise(8, n, r, Variant::Ruse, 7, 13, 2 * n, 101);
    }
    for (n, r) in combos(16) {
        check_bitwise(16, n, r, Variant::C64, 7, 13, 2 * n, 103);
    }
}

/// The programmatic override and the dispatch report agree end to end
/// through the umbrella crate.
#[test]
fn dispatch_override_is_visible_in_dispatch_info() {
    let _g = dispatch_guard();
    simd::set_force_scalar(true);
    let forced = simd::dispatch_info();
    assert_eq!(forced.isa, "scalar");
    assert!(forced.forced_scalar);
    assert_eq!(forced.lane_width, 1);
    simd::set_force_scalar(false);
    let native = simd::dispatch_info();
    assert_eq!(native.isa, simd::native_isa().name());
    assert!(!native.forced_scalar);
}

proptest! {
    #[test]
    fn simd_matches_scalar_bitwise_sampled_shapes(
        ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000
    ) {
        // Random shapes over every family, mirroring the accuracy net: the
        // SIMD/scalar equivalence must hold wherever the kernels do.
        for alpha in [4usize, 8, 16] {
            for (n, r) in combos(alpha) {
                let ow = n + oww % (2 * n + 1);
                check_bitwise(alpha, n, r, Variant::Standard, ODD_CHANNELS[ici], ODD_CHANNELS[oci], ow, seed);
            }
        }
    }

    #[test]
    fn gamma4_standard_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        check_family(4, Variant::Standard, ici, oci, oww, seed);
    }

    #[test]
    fn gamma8_standard_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        check_family(8, Variant::Standard, ici, oci, oww, seed);
    }

    #[test]
    fn gamma16_standard_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        check_family(16, Variant::Standard, ici, oci, oww, seed);
    }

    #[test]
    fn gamma_ruse_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        // The §5.4 reuse variant shares the microkernel FMA path but gathers
        // one overlapping strip per block; sweep it across every family too.
        for alpha in [4usize, 8, 16] {
            check_family(alpha, Variant::Ruse, ici, oci, oww, seed);
        }
    }

    #[test]
    fn gamma16_c64_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        // §5.6 enlarged cache block is only defined for α = 16.
        check_family(16, Variant::C64, ici, oci, oww, seed);
    }
}
