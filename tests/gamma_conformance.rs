//! Property-test conformance net for every supported `Γα(n, r)` kernel.
//!
//! The channel-chunk microkernels in `iwino-core::kernel` walk IC/OC in
//! unrolled lanes of `LANE = 8` f32 with a remainder lane for the final
//! partial chunk. These tests force each kernel (no planner heuristics) on
//! channel counts deliberately *not* divisible by 8 — {3, 5, 7, 9, 17} —
//! so every case exercises the remainder lane (and 17 = 2·8 + 1 exercises
//! full lanes *plus* the remainder), and on output widths `OW ∈ [n, 3n]`
//! so exact covers, ±1 raggedness, and the GEMM remainder segment all come
//! up. Agreement is checked against the f64 direct reference.
//!
//! The case budget honours `PROPTEST_CASES` (see `scripts/check.sh`).

use im2col_winograd::baselines::direct_conv_f64_ref;
use im2col_winograd::prelude::*;
use im2col_winograd::tensor::{max_mixed_error, ErrorStats};
use proptest::prelude::*;

/// Channel counts that are all coprime-ish with the lane width 8: each one
/// forces the remainder lane, and 17 also runs two full lanes first.
const ODD_CHANNELS: [usize; 5] = [3, 5, 7, 9, 17];

/// Every `(n, r)` the `Γα` family supports for this `α` with `r ∈ 2..=9`:
/// `α = n + r − 1` and output tiles of at least 2.
fn combos(alpha: usize) -> Vec<(usize, usize)> {
    (2..=9)
        .filter_map(|r| {
            let n = (alpha + 1).checked_sub(r)?;
            (n >= 2).then_some((n, r))
        })
        .collect()
}

/// Run one forced-kernel conv against the f64 direct reference.
///
/// `lo..hi` is the input distribution: sign-varying `[-1, 1)` for the
/// well-conditioned α ∈ {4, 8} transforms, the paper's positive `[1, 2)`
/// for α = 16 whose transform entries span ~10 orders of magnitude
/// (§6.2.2 conditioning).
#[allow(clippy::too_many_arguments)]
fn check_forced(alpha: usize, n: usize, r: usize, variant: Variant, ic: usize, oc: usize, ow: usize, seed: u64) {
    let s = ConvShape::square(1, ow, ic, oc, r);
    let (lo, hi) = if alpha == 16 { (1.0, 2.0) } else { (-1.0, 1.0) };
    let x = Tensor4::<f32>::random(s.x_dims(), seed, lo, hi);
    let w = Tensor4::<f32>::random(s.w_dims(), seed ^ 0x9e3779b97f4a7c15, lo, hi);
    let want = direct_conv_f64_ref(&x, &w, &s);
    let opts = ConvOptions {
        force_kernels: Some(vec![GammaSpec::new(alpha, n, r, variant)]),
        ..Default::default()
    };
    let got = conv2d_opts(&x, &w, &s, &opts);
    if alpha == 16 {
        let stats = ErrorStats::between(&got, &want);
        assert!(
            stats.mean < 1e-3,
            "Γ{alpha}(n={n}, r={r}, {variant:?}) ic={ic} oc={oc} ow={ow}: {stats:?}"
        );
    } else {
        let e = max_mixed_error(&got, &want);
        assert!(
            e < 5e-4,
            "Γ{alpha}(n={n}, r={r}, {variant:?}) ic={ic} oc={oc} ow={ow}: error {e}"
        );
    }
}

/// Sweep every combo of one α family for a sampled channel/width/seed case.
fn check_family(alpha: usize, variant: Variant, ici: usize, oci: usize, oww: usize, seed: u64) {
    for (n, r) in combos(alpha) {
        // OW ∈ [n, 3n]: k·n exact covers, k·n ± 1, and GEMM remainders.
        let ow = n + oww % (2 * n + 1);
        check_forced(alpha, n, r, variant, ODD_CHANNELS[ici], ODD_CHANNELS[oci], ow, seed);
    }
}

proptest! {
    #[test]
    fn gamma4_standard_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        check_family(4, Variant::Standard, ici, oci, oww, seed);
    }

    #[test]
    fn gamma8_standard_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        check_family(8, Variant::Standard, ici, oci, oww, seed);
    }

    #[test]
    fn gamma16_standard_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        check_family(16, Variant::Standard, ici, oci, oww, seed);
    }

    #[test]
    fn gamma_ruse_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        // The §5.4 reuse variant shares the microkernel FMA path but gathers
        // one overlapping strip per block; sweep it across every family too.
        for alpha in [4usize, 8, 16] {
            check_family(alpha, Variant::Ruse, ici, oci, oww, seed);
        }
    }

    #[test]
    fn gamma16_c64_remainder_lanes(ici in 0usize..5, oci in 0usize..5, oww in 0usize..64, seed in 0u64..1_000_000) {
        // §5.6 enlarged cache block is only defined for α = 16.
        check_family(16, Variant::C64, ici, oci, oww, seed);
    }
}
