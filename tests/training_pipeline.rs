//! End-to-end Experiment-3 pipeline at CI scale: both conv backends train
//! the same nets on the same synthetic data and converge together.

use im2col_winograd::nn::train::OptKind;
use im2col_winograd::nn::{evaluate, resnet18, train, vgg16, Backend, SyntheticDataset, TrainConfig};

#[test]
fn vgg16_trains_with_both_backends_and_curves_match() {
    let data = SyntheticDataset::cifar10_like(96, 48);
    let cfg = TrainConfig {
        epochs: 2,
        batch: 12,
        lr: 1e-3,
        opt: OptKind::Adam,
        log_every: 1,
    };
    let mut reports = Vec::new();
    for backend in [Backend::ImcolWinograd, Backend::Gemm] {
        let mut model = vgg16(32, 3, 10, 4, backend);
        reports.push(train(&mut model, &data, &cfg));
    }
    let (a, g) = (&reports[0], &reports[1]);
    assert_eq!(a.losses.len(), g.losses.len());
    // Same nets + same data + different conv algorithm ⟹ nearly identical
    // loss curves (Figures 11/12's claim).
    for (&(step, la), &(_, lg)) in a.losses.iter().zip(&g.losses) {
        assert!(
            (la - lg).abs() < 0.25 * lg.abs().max(0.5),
            "step {step}: winograd {la} vs gemm {lg}"
        );
    }
    // Both arms actually learn.
    assert!(a.final_loss() < a.losses[0].1, "winograd arm did not learn");
    assert!(g.final_loss() < g.losses[0].1, "gemm arm did not learn");
}

#[test]
fn resnet18_trains_and_eval_accuracy_beats_chance() {
    let data = SyntheticDataset::cifar10_like(120, 40);
    let cfg = TrainConfig {
        epochs: 3,
        batch: 12,
        lr: 2e-3,
        opt: OptKind::Adam,
        log_every: 2,
    };
    let mut model = resnet18(3, 10, 8, Backend::ImcolWinograd);
    let report = train(&mut model, &data, &cfg);
    assert!(report.final_loss() < report.losses[0].1);
    let acc = evaluate(&mut model, &data, 12, true);
    assert!(acc > 0.2, "test accuracy {acc} vs 0.1 chance");
    assert!(report.weight_bytes > 0);
    assert_eq!(report.epoch_seconds.len(), 3);
}

#[test]
fn sgdm_and_adam_both_work_end_to_end() {
    let data = SyntheticDataset::cifar10_like(64, 32);
    for opt in [OptKind::Adam, OptKind::Sgdm] {
        let cfg = TrainConfig {
            epochs: 2,
            batch: 8,
            lr: 3e-3,
            opt,
            log_every: 1,
        };
        let mut model = vgg16(32, 3, 10, 4, Backend::Gemm);
        let report = train(&mut model, &data, &cfg);
        assert!(
            report.final_loss() < report.losses[0].1 * 1.05,
            "{opt:?} failed to reduce loss: {:?} → {:?}",
            report.losses[0].1,
            report.final_loss()
        );
    }
}
