//! Cross-crate correctness: every convolution algorithm in the workspace
//! must agree with the FP64 direct reference on the same inputs.

use im2col_winograd::baselines::{direct_conv_f64_ref, im2col_conv_nhwc, winograd2d_conv, Im2colPlan};
use im2col_winograd::core::{conv2d_opts, ConvOptions, GammaSpec, Variant};
use im2col_winograd::tensor::{max_mixed_error, ConvShape, Tensor4};
use proptest::prelude::*;

fn agree(shape: &ConvShape, opts: &ConvOptions, seed: u64, tol: f64) {
    let x = Tensor4::<f32>::random(shape.x_dims(), seed, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), seed + 1, -1.0, 1.0);
    let truth = direct_conv_f64_ref(&x, &w, shape);

    let wino = conv2d_opts(&x, &w, shape, opts);
    let e = max_mixed_error(&wino, &truth);
    assert!(e < tol, "winograd {shape:?}: {e}");

    let plan = Im2colPlan::new(shape);
    let gemm = im2col_conv_nhwc(&x, &w, &plan);
    let e = max_mixed_error(&gemm, &truth);
    assert!(e < 1e-4, "gemm {shape:?}: {e}");
}

#[test]
fn every_figure8_kernel_runs_correctly_scaled_down() {
    // One small-but-faithful shape per Figure 8 panel, every variant.
    for (alpha, n, r, variants) in [
        (8usize, 4usize, 5usize, vec![Variant::Standard, Variant::Ruse]),
        (8, 5, 4, vec![Variant::Standard]),
        (8, 3, 6, vec![Variant::Standard, Variant::Ruse]),
        (8, 6, 3, vec![Variant::Standard]),
        (8, 2, 7, vec![Variant::Standard, Variant::Ruse]),
        (8, 7, 2, vec![Variant::Standard]),
        (16, 10, 7, vec![Variant::Standard, Variant::C64]),
        (16, 9, 8, vec![Variant::Standard, Variant::Ruse, Variant::C64]),
        (16, 8, 9, vec![Variant::Standard, Variant::Ruse, Variant::C64]),
    ] {
        for variant in variants {
            let spec = GammaSpec::new(alpha, n, r, variant);
            let opts = ConvOptions {
                force_kernels: Some(vec![spec]),
                ..Default::default()
            };
            // OW = 2n + 1 forces Γ + fallback + GEMM boundary segments.
            let hw = 2 * n + 1;
            let shape = ConvShape::unit(2, hw, hw, 8, 8, r, r, r / 2, r / 2);
            let tol = if alpha == 16 { 2e-2 } else { 3e-4 };
            agree(&shape, &opts, 7_000 + (alpha * 100 + n * 10 + r) as u64, tol);
        }
    }
}

#[test]
fn fused_2d_winograd_agrees_on_3x3() {
    let shape = ConvShape::square(2, 13, 8, 8, 3);
    let x = Tensor4::<f32>::random(shape.x_dims(), 1, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 2, -1.0, 1.0);
    let truth = direct_conv_f64_ref(&x, &w, &shape);
    for m in [2usize, 4] {
        let y = winograd2d_conv(&x, &w, &shape, m);
        let e = max_mixed_error(&y, &truth);
        assert!(e < 1e-3, "F({m}x{m},3x3): {e}");
    }
}

#[test]
fn winograd_vs_gemm_bitwise_class_agreement() {
    // Different algorithms, same math: results agree to f32 accumulation
    // noise even on a shape with all three boundary segment kinds.
    let shape = ConvShape::square(1, 23, 16, 24, 3);
    let x = Tensor4::<f32>::random(shape.x_dims(), 50, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 51, -1.0, 1.0);
    let a = im2col_winograd::core::conv2d(&x, &w, &shape);
    let plan = Im2colPlan::new(&shape);
    let b = im2col_conv_nhwc(&x, &w, &plan);
    assert!(max_mixed_error(&a, &b) < 2e-4);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]
    #[test]
    fn random_shapes_agree(
        n in 1usize..3,
        hw in 6usize..20,
        ic in 1usize..12,
        oc in 1usize..12,
        r in 2usize..8,
        pad_kind in 0usize..3,
        seed in 0u64..10_000,
    ) {
        prop_assume!(hw + 2 * (r / 2) >= r);
        let pw = match pad_kind {
            0 => 0,
            1 => r / 2,
            _ => (r - 1).min(3),
        };
        prop_assume!(hw + 2 * pw >= r);
        let shape = ConvShape::unit(n, hw, hw, ic, oc, r, r, pw, pw);
        agree(&shape, &ConvOptions::default(), seed, 5e-4);
    }

    #[test]
    fn random_non_square_filters(
        fh in 2usize..9,
        fw in 2usize..8,
        hw in 10usize..18,
        seed in 0u64..10_000,
    ) {
        let shape = ConvShape::unit(1, hw, hw, 4, 4, fh, fw, fh / 2, fw / 2);
        agree(&shape, &ConvOptions::default(), seed, 5e-4);
    }
}
