//! Edge cases of the §5.5 boundary planner, plus the obs plan-decision
//! counter round-trip.
//!
//! This lives in its own integration-test binary on purpose: the obs
//! counters are process-global, and the round-trip test below needs to
//! observe exact counter deltas. Every test here serialises on one mutex so
//! plans built by a neighbouring test cannot leak into the deltas (other
//! test binaries are separate processes and cannot interfere).

use im2col_winograd::core::plan::{SegmentPlan, BK, LANE};
use im2col_winograd::core::{default_kernel_prefs, GammaSpec, KernelChoice, Segment, Variant};
use im2col_winograd::obs;
use std::sync::{Mutex, MutexGuard};

fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spec(alpha: usize, n: usize, r: usize) -> GammaSpec {
    GammaSpec::new(alpha, n, r, Variant::Standard)
}

#[test]
fn lane_width_divides_channel_panel() {
    // The microkernel contract: the channel panel is a whole number of
    // SIMD lanes, so only the final partial panel can hit the remainder
    // lane. `const _` in plan.rs enforces this at compile time; assert it
    // here too so the invariant shows up in test output if either constant
    // is ever edited.
    let _g = guard();
    let (bk, lane) = (BK, LANE);
    assert_eq!(bk % lane, 0, "BK must stay a multiple of the lane width");
    assert!(bk >= lane, "panel of {bk} cannot hold a {lane}-wide lane");
    assert_eq!(
        lane,
        im2col_winograd::transforms::LANE,
        "transforms and core lane widths must agree"
    );
}

#[test]
fn ow_shorter_than_tile_is_pure_fallback() {
    let _g = guard();
    // OW = 5 < n = 6: Γ8(6,3) covers zero columns, so the plan must be a
    // single GEMM segment spanning the whole width — not an empty plan and
    // not a zero-length Γ segment.
    let plan = SegmentPlan::build(5, &[spec(8, 6, 3)]);
    assert_eq!(
        plan.segments,
        vec![Segment {
            start: 0,
            len: 5,
            kernel: KernelChoice::Gemm,
        }]
    );
    assert_eq!(plan.winograd_coverage(), 0.0);
    assert!(plan.gamma_specs().is_empty());

    // Same with the full default preference list for r = 3 (n_min = 2):
    // OW = 1 is below every tile size.
    let prefs = default_kernel_prefs(3, false);
    let plan = SegmentPlan::build(1, &prefs);
    assert_eq!(plan.segments.len(), 1);
    assert_eq!(plan.segments[0].kernel, KernelChoice::Gemm);
}

#[test]
fn ow_exactly_tile_multiples_plus_minus_one() {
    let _g = guard();
    let prefs = [spec(8, 6, 3), spec(4, 2, 3)];
    for k in 1..=4usize {
        // Exact cover: one Γ8 segment, nothing else.
        let plan = SegmentPlan::build(6 * k, &prefs);
        assert_eq!(plan.segments.len(), 1, "OW = {}: {:?}", 6 * k, plan.segments);
        assert_eq!(plan.segments[0].len, 6 * k);
        assert_eq!(plan.winograd_coverage(), 1.0);

        // n·k + 1: the +1 falls through Γ4(2,3) (2 ∤ 1) to GEMM.
        let plan = SegmentPlan::build(6 * k + 1, &prefs);
        assert_eq!(
            plan.segments,
            vec![
                Segment {
                    start: 0,
                    len: 6 * k,
                    kernel: KernelChoice::Gamma(spec(8, 6, 3)),
                },
                Segment {
                    start: 6 * k,
                    len: 1,
                    kernel: KernelChoice::Gemm,
                },
            ]
        );

        // n·k − 1: Γ8 drops to k−1 tiles, Γ4 takes 4 of the 5 leftover
        // columns, GEMM the last one (for k = 1, OW = 5 is the pure-GEMM
        // case covered above — with the Γ4 fallback it becomes 4 + 1).
        let plan = SegmentPlan::build(6 * k - 1, &prefs);
        let covered: usize = plan.segments.iter().map(|s| s.len).sum();
        assert_eq!(covered, 6 * k - 1, "segments must tile OW exactly: {:?}", plan.segments);
        let starts_ok = plan.segments.windows(2).all(|w| w[0].start + w[0].len == w[1].start);
        assert!(starts_ok, "segments must be contiguous: {:?}", plan.segments);
        assert_eq!(plan.segments.last().unwrap().kernel, KernelChoice::Gemm);
        assert_eq!(plan.segments.last().unwrap().len, 1);
    }
}

#[test]
fn plan_decisions_round_trip_through_obs_counters() {
    let _g = guard();
    let prefs = default_kernel_prefs(3, false); // Γ8(6,3), Γ4(2,3)
    let was = obs::enabled();
    obs::set_enabled(true);
    obs::reset();

    // Build a batch of plans with known compositions and tally what the
    // counters *should* say from the plans themselves.
    let mut want_calls = 0u64;
    let mut want_gamma = 0u64;
    let mut want_gemm = 0u64;
    for ow in [1usize, 5, 6, 7, 18, 23, 24, 25] {
        let plan = SegmentPlan::build(ow, &prefs);
        want_calls += 1;
        for s in &plan.segments {
            match s.kernel {
                KernelChoice::Gamma(_) => want_gamma += 1,
                KernelChoice::Gemm => want_gemm += 1,
            }
        }
    }

    let snap = obs::snapshot();
    obs::set_enabled(was);

    assert_eq!(snap.counter(obs::Counter::PlanCalls), want_calls);
    assert_eq!(snap.counter(obs::Counter::PlanGammaSegments), want_gamma);
    assert_eq!(snap.counter(obs::Counter::PlanGemmSegments), want_gemm);
    // Sanity on the tally itself: the OW list above mixes pure-GEMM,
    // exact-cover, and ragged widths, so both kinds of segment showed up.
    assert!(want_gamma >= 6, "expected several Γ segments, got {want_gamma}");
    assert!(want_gemm >= 3, "expected several GEMM segments, got {want_gemm}");
}
