//! Inspect the GPU cost model: occupancy, arithmetic intensity, bank
//! behaviour and predicted Gflop/s for every Γ kernel on both of the
//! paper's GPUs — a compact view of what drives the Figure 8/9 shapes.
//!
//! ```sh
//! cargo run --release --example gpu_sim_report
//! ```

use im2col_winograd::core::{GammaSpec, Variant};
use im2col_winograd::gpu_sim::model::{arithmetic_intensity, gamma_bank_efficiency, Algorithm, Layout};
use im2col_winograd::gpu_sim::{occupancy, BlockResources, DeviceSpec};
use im2col_winograd::tensor::ConvShape;

fn main() {
    println!("bank efficiency with §5.2 fixes: {:.2}", gamma_bank_efficiency(true));
    println!("bank efficiency without fixes:   {:.2}\n", gamma_bank_efficiency(false));

    for dev in [DeviceSpec::rtx3060ti(), DeviceSpec::rtx4090()] {
        println!(
            "== {} — peak {:.1} Tflop/s, {:.0} GB/s DRAM ==",
            dev.name,
            dev.peak_flops() / 1e12,
            dev.mem_bw / 1e9
        );
        println!(
            "{:<20} {:>7} {:>9} {:>10} {:>12} {:>12}",
            "kernel", "Φ", "op/byte", "occupancy", "smem/block", "sim Gflop/s"
        );
        for (alpha, n, r, variant) in [
            (8usize, 6usize, 3usize, Variant::Standard),
            (8, 4, 5, Variant::Ruse),
            (8, 2, 7, Variant::Ruse),
            (16, 10, 7, Variant::C64),
            (16, 9, 8, Variant::Ruse),
            (16, 8, 9, Variant::C64),
        ] {
            let spec = GammaSpec::new(alpha, n, r, variant);
            let (bn, bm) = match (alpha, variant) {
                (4, _) => (64, 64),
                (8, _) => (64, 32),
                (16, Variant::C64) => (64, 32),
                _ => (32, 32),
            };
            let block = BlockResources::gamma(alpha, bn, bm, variant == Variant::Ruse);
            let occ = occupancy(&dev, &block);
            let shape = ConvShape::from_ofms(128, 8 * n, 8 * n, 128, 128, r);
            let sim = im2col_winograd::gpu_sim::estimate(
                &dev,
                &shape,
                &Algorithm::Gamma {
                    spec,
                    include_transpose: false,
                },
            );
            println!(
                "{:<20} {:>7.2} {:>9.2} {:>9.0}% {:>11}B {:>12.0}",
                format!("{spec}"),
                spec.phi(),
                arithmetic_intensity(alpha, r, bn, bm, variant == Variant::Ruse),
                100.0 * occ.warp_occupancy,
                block.smem_bytes,
                sim.gflops
            );
        }
        // Baselines for scale.
        let shape = ConvShape::from_ofms(128, 48, 48, 128, 128, 3);
        for (label, algo) in [
            ("GEMM (NHWC)", Algorithm::ImplicitGemm { layout: Layout::Nhwc }),
            ("GEMM (NCHW)", Algorithm::ImplicitGemm { layout: Layout::Nchw }),
            ("Fused 2D Winograd", Algorithm::FusedWinograd2d),
        ] {
            let sim = im2col_winograd::gpu_sim::estimate(&dev, &shape, &algo);
            println!(
                "{label:<20} {:>7} {:>9.2} {:>10} {:>12} {:>12.0}",
                "-", sim.intensity, "-", "-", sim.gflops
            );
        }
        println!();
    }
    println!("Γ16(8×8, 9×9) as a *2-D* Winograd would need α² = 256 states:");
    let blk = BlockResources::winograd2d(16, 32, 32);
    let occ = occupancy(&DeviceSpec::rtx4090(), &blk);
    println!(
        "  smem/block = {} B > 49152 B budget ⟹ blocks/SM = {} (cannot launch — §4.2's flexibility argument)",
        blk.smem_bytes, occ.blocks_per_sm
    );
}
