//! Quickstart: run an Im2col-Winograd convolution, check it against the
//! FP64 reference, and compare its speed with the im2col+GEMM baseline.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use im2col_winograd::baselines::{direct_conv_f64_ref, im2col_conv_nhwc, Im2colPlan};
use im2col_winograd::core::conv2d;
use im2col_winograd::tensor::{ConvShape, ErrorStats, Tensor4};
use std::time::Instant;

fn main() {
    // A Γ8(6,3)-friendly layer: 3×3 filter, padding 1, NHWC.
    // ofms: 8×48×48×128 with IC = 128.
    let shape = ConvShape::square(8, 48, 128, 128, 3);
    println!("convolution: {shape:?}");
    println!("standard-algorithm FLOPs: {:.2} Gflop", shape.flops() / 1e9);

    let x = Tensor4::<f32>::random(shape.x_dims(), 1, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 2, -1.0, 1.0);

    // --- Im2col-Winograd (the paper's algorithm) ---
    let t0 = Instant::now();
    let y = conv2d(&x, &w, &shape);
    let warm = t0.elapsed();
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = conv2d(&x, &w, &shape);
    }
    let wino_dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "im2col-winograd: first call {warm:?}, steady {:.1} ms = {:.1} Gflop/s",
        wino_dt * 1e3,
        shape.flops() / wino_dt / 1e9
    );

    // --- im2col + GEMM baseline ---
    let plan = Im2colPlan::new(&shape);
    let _ = im2col_conv_nhwc(&x, &w, &plan);
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = im2col_conv_nhwc(&x, &w, &plan);
    }
    let gemm_dt = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "im2col-gemm:     steady {:.1} ms = {:.1} Gflop/s",
        gemm_dt * 1e3,
        shape.flops() / gemm_dt / 1e9
    );
    println!("speedup: {:.2}x", gemm_dt / wino_dt);

    // --- accuracy vs the FP64 reference ---
    let truth = direct_conv_f64_ref(&x, &w, &shape);
    let stats = ErrorStats::between(&y, &truth);
    println!(
        "accuracy vs FP64 reference: mean rel err {:.2e}, max {:.2e}",
        stats.mean, stats.max
    );
    // Signed [-1,1) inputs put many outputs near zero, where *relative*
    // error is dominated by cancellation — Γ8 lands around 1e-5 mean here
    // (vs ~1e-7 on the positive [1,2) inputs Table 3 uses).
    assert!(stats.mean < 5e-5, "accuracy regression");
    println!("ok.");
}
