//! Multi-scale feature extraction — the paper's motivating use case for
//! flexible filter widths ("the more generalized acceleration offered by
//! Im2col-Winograd can be beneficial for extracting features at different
//! convolution scales", abstract).
//!
//! Runs the *same* feature map through r×r convolutions for every
//! r ∈ 2..=9, reports which Γα(n, r) kernel plan each width uses and its
//! throughput, and verifies every result against the FP64 reference.
//!
//! ```sh
//! cargo run --release --example multiscale_filters
//! ```

use im2col_winograd::baselines::direct_conv_f64_ref;
use im2col_winograd::core::plan::KernelChoice;
use im2col_winograd::core::{conv2d_opts, default_kernel_prefs, ConvOptions, SegmentPlan};
use im2col_winograd::tensor::{ConvShape, ErrorStats, Tensor4};
use std::time::Instant;

fn main() {
    let (n, hw, c) = (4usize, 40usize, 64usize);
    println!("input: {n}x{hw}x{hw}x{c} NHWC; one r x r convolution per scale\n");
    println!(
        "{:<4} {:<44} {:>10} {:>12} {:>12}",
        "r", "width-axis plan", "Gflop/s", "mean err", "Φ = nr/α"
    );
    for r in 2..=9usize {
        let shape = ConvShape::square(n, hw, c, c, r);
        let x = Tensor4::<f32>::random(shape.x_dims(), 100 + r as u64, -1.0, 1.0);
        let w = Tensor4::<f32>::random(shape.w_dims(), 200 + r as u64, -1.0, 1.0);

        let opts = ConvOptions {
            prefer_alpha16: r >= 7,
            ..Default::default()
        };
        let prefs = default_kernel_prefs(r, r >= 7);
        let plan = SegmentPlan::build(shape.ow(), &prefs);
        let plan_str: Vec<String> = plan
            .segments
            .iter()
            .map(|s| match s.kernel {
                KernelChoice::Gamma(g) => format!("{}[{}..{}]", g, s.start, s.start + s.len),
                KernelChoice::Gemm => format!("GEMM[{}..{}]", s.start, s.start + s.len),
            })
            .collect();

        let _ = conv2d_opts(&x, &w, &shape, &opts); // warm
        let reps = 3;
        let t0 = Instant::now();
        let mut y = None;
        for _ in 0..reps {
            y = Some(conv2d_opts(&x, &w, &shape, &opts));
        }
        let dt = t0.elapsed().as_secs_f64() / reps as f64;
        let y = y.unwrap();

        let truth = direct_conv_f64_ref(&x, &w, &shape);
        let err = ErrorStats::between(&y, &truth).mean;
        let phi = prefs.first().map(|p| p.phi()).unwrap_or(1.0);
        println!(
            "{:<4} {:<44} {:>10.1} {:>12.2e} {:>12.2}",
            r,
            plan_str.join(" + "),
            shape.flops() / dt / 1e9,
            err,
            phi
        );
    }
    println!("\nNote: 2-D fused Winograd at FP32 is restricted to 3x3 — every other");
    println!("row above is a width 2-D Winograd cannot cover with α ≤ 16 states (§4.2).");
}
