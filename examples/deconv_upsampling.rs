//! Deconvolution (backward-data) with the fused 180°-rotation filter
//! transform — the path CNN training uses to propagate gradients through
//! convolution layers (§5.1).
//!
//! Demonstrates: (1) the adjoint identity that makes training correct,
//! (2) deconvolution speed vs forward convolution ("The backward kernels
//! have similar performance to the forward kernels"), and (3) a visual
//! gradient-routing check on a delta image.
//!
//! ```sh
//! cargo run --release --example deconv_upsampling
//! ```

use im2col_winograd::core::{conv2d, deconv2d};
use im2col_winograd::tensor::{ConvShape, Tensor4};
use std::time::Instant;

fn main() {
    let shape = ConvShape::square(4, 32, 64, 64, 5);
    println!("layer: {shape:?} (Γ8(4,5) territory)\n");
    let x = Tensor4::<f32>::random(shape.x_dims(), 1, -1.0, 1.0);
    let w = Tensor4::<f32>::random(shape.w_dims(), 2, -1.0, 1.0);
    let dy = Tensor4::<f32>::random(shape.y_dims(), 3, -1.0, 1.0);

    // (1) adjointness: ⟨conv(x), dy⟩ == ⟨x, deconv(dy)⟩.
    let y = conv2d(&x, &w, &shape);
    let dx = deconv2d(&dy, &w, &shape);
    let lhs: f64 = y
        .as_slice()
        .iter()
        .zip(dy.as_slice())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    let rhs: f64 = x
        .as_slice()
        .iter()
        .zip(dx.as_slice())
        .map(|(&a, &b)| a as f64 * b as f64)
        .sum();
    println!("adjoint identity: <conv(x), dy> = {lhs:.4} vs <x, deconv(dy)> = {rhs:.4}");
    assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));

    // (2) forward vs backward throughput.
    let reps = 5;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = conv2d(&x, &w, &shape);
    }
    let fwd = t0.elapsed().as_secs_f64() / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        let _ = deconv2d(&dy, &w, &shape);
    }
    let bwd = t0.elapsed().as_secs_f64() / reps as f64;
    println!(
        "forward {:.1} Gflop/s, backward-data {:.1} Gflop/s (ratio {:.2})",
        shape.flops() / fwd / 1e9,
        shape.flops() / bwd / 1e9,
        fwd / bwd
    );

    // (3) gradient routing: a single delta in dy spreads over exactly the
    // filter's footprint in dx.
    let small = ConvShape::square(1, 9, 1, 1, 3);
    let mut delta = Tensor4::<f32>::zeros(small.y_dims());
    *delta.at_mut(0, 4, 4, 0) = 1.0;
    let w1 = Tensor4::<f32>::random(small.w_dims(), 9, 0.5, 1.0);
    let spread = deconv2d(&delta, &w1, &small);
    println!("\ndelta-gradient footprint (3x3 filter, delta at centre):");
    for iy in 0..9 {
        let row: String = (0..9)
            .map(|ix| {
                if spread.at(0, iy, ix, 0).abs() > 1e-9 {
                    " *"
                } else {
                    " ."
                }
            })
            .collect();
        println!("  {row}");
    }
    let nonzero = spread.as_slice().iter().filter(|v| v.abs() > 1e-9).count();
    assert_eq!(nonzero, 9, "3x3 footprint expected");
    println!("\nok: gradient lands on exactly the 3x3 input footprint.");
}
