//! Train a small CNN on the synthetic Cifar10-like dataset with both
//! convolution backends and compare convergence — Experiment 3 in
//! miniature.
//!
//! ```sh
//! cargo run --release --example train_synthetic_cifar
//! ```

use im2col_winograd::nn::train::OptKind;
use im2col_winograd::nn::{train, vgg16, Backend, SyntheticDataset, TrainConfig};

fn main() {
    let data = SyntheticDataset::cifar10_like(320, 160);
    let cfg = TrainConfig {
        epochs: 3,
        batch: 16,
        lr: 1e-3,
        opt: OptKind::Adam,
        log_every: 2,
    };
    println!("VGG16 (width 8) on synthetic Cifar10-like data, Adam lr 1e-3, 3 epochs\n");

    let mut results = Vec::new();
    for (label, backend) in [
        ("Alpha (Im2col-Winograd)", Backend::ImcolWinograd),
        ("GEMM control", Backend::Gemm),
    ] {
        let mut model = vgg16(32, 3, 10, 8, backend);
        let report = train(&mut model, &data, &cfg);
        println!(
            "{label:<26} {:.2} s/epoch, train acc {:.1}%, test acc {:.1}%, weights {} KB",
            report.mean_epoch_seconds(),
            100.0 * report.train_accuracy,
            100.0 * report.test_accuracy,
            report.weight_bytes / 1024
        );
        results.push(report);
    }

    println!("\nloss curves (step: alpha vs gemm):");
    let (a, g) = (&results[0], &results[1]);
    for (&(step, la), &(_, lg)) in a.losses.iter().zip(&g.losses) {
        let bar = "#".repeat((la * 12.0).min(60.0) as usize);
        println!("{step:>4}: {la:>7.4} vs {lg:>7.4}  {bar}");
    }
    let max_gap = a
        .losses
        .iter()
        .zip(&g.losses)
        .map(|(&(_, x), &(_, y))| (x - y).abs())
        .fold(0.0f32, f32::max);
    println!("\nmax loss gap between backends: {max_gap:.4} (should be small — same nets, same data)");
    let speedup = g.mean_epoch_seconds() / a.mean_epoch_seconds();
    println!("epoch-time speedup of the Winograd backend: {speedup:.2}x");
}
