//! The ND extension (§4.2): volumetric (3-D) Im2col-Winograd convolution.
//!
//! "Im2col-Winograd can be applied to ND convolution, by expanding Stage1
//! Im2col to ND, while remaining Stage2 unchanged." This example runs a 3-D
//! convolution over a synthetic volume, verifies it against a direct FP64
//! reference, and shows why 2-D/3-D *Winograd nesting* could never get
//! here: `F(n×n×n, r×r×r)` would need α³ states.
//!
//! ```sh
//! cargo run --release --example volumetric_conv3d
//! ```

use im2col_winograd::core::nd::{conv3d, direct_conv3d_f64};
use im2col_winograd::tensor::{Conv3dShape, Tensor5};
use std::time::Instant;

fn main() {
    // A small video/volume block: 2 × 16³ voxels × 16 channels, 3×3×3 filter.
    let shape = Conv3dShape::cube(2, 16, 16, 16, 3);
    println!("conv3d: {shape:?}");
    println!("standard FLOPs: {:.2} Gflop", shape.flops() / 1e9);

    let x = Tensor5::<f32>::random(shape.x_dims(), 1, -1.0, 1.0);
    let w = Tensor5::<f32>::random(shape.w_dims(), 2, -1.0, 1.0);

    let t0 = Instant::now();
    let y = conv3d(&x, &w, &shape);
    println!(
        "im2col-winograd conv3d: {:?} ({:.1} Gflop/s)",
        t0.elapsed(),
        shape.flops() / t0.elapsed().as_secs_f64() / 1e9
    );

    let t0 = Instant::now();
    let truth = direct_conv3d_f64(&x, &w, &shape);
    println!("direct FP64 reference:  {:?}", t0.elapsed());

    let max_err = y
        .as_slice()
        .iter()
        .zip(truth.as_slice())
        .map(|(&g, &t)| ((g as f64) - t).abs() / (t.abs() + 1.0))
        .fold(0.0f64, f64::max);
    println!("max mixed error vs FP64: {max_err:.2e}");
    assert!(max_err < 1e-3);

    // The state-count argument, in numbers (§4.2 / §3):
    println!("\nstate count per output tile (what must fit in fast memory):");
    for (dims, desc) in [
        (1u32, "Im2col-Winograd Γ8(6,3), any-D"),
        (2, "2-D Winograd F(6×6, 3×3)"),
        (3, "3-D Winograd F(6×6×6, 3×3×3)"),
    ] {
        let states = 8u64.pow(dims);
        println!("  {desc:<38} α^{dims} = {states:>4} states");
    }
    println!("\nThe 48 KiB SMEM budget caps α at 24 (§4.1): nesting dies at 2-D for");
    println!("big filters; the 1-D decomposition keeps α = 8 for any dimensionality.");
    println!("ok.");
}
