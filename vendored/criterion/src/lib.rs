//! Offline stand-in for the `criterion` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! small API surface used by `crates/bench/benches/*.rs` is implemented
//! locally: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size` / `throughput` / `bench_with_input`, plus the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is calibrated so one sample lasts at
//! least ~5 ms, then `sample_size` samples are taken and the median
//! per-iteration time is printed (with elements/s when a throughput was
//! declared). There is no statistics engine, no comparison against saved
//! baselines, and no plotting.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, matching criterion's API.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_id.into(), parameter),
        }
    }
}

/// Throughput declaration; only element counts are used in this repo.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_size,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Calibrate: grow the per-sample iteration count until one sample
        // costs at least ~5 ms (or the routine is genuinely slow).
        let target = Duration::from_millis(5);
        loop {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || self.iters_per_sample >= 1 << 20 {
                break;
            }
            self.iters_per_sample = if elapsed.is_zero() {
                self.iters_per_sample * 16
            } else {
                (self.iters_per_sample * 2).max(1)
            };
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns_per_iter(&mut self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.sort();
        self.samples[self.samples.len() / 2].as_nanos() as f64 / self.iters_per_sample as f64
    }
}

fn report(name: &str, bencher: &mut Bencher, throughput: Option<Throughput>) {
    let ns = bencher.median_ns_per_iter();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!("  {:>10.3} MB/s", n as f64 / ns * 1e3)
        }
        _ => String::new(),
    };
    println!("{name:<56} {:>12.1} ns/iter{rate}", ns);
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(10);
        f(&mut b);
        report(name, &mut b, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &mut b, self.throughput);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.full), &mut b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_plumbing() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("f", 7), &2u32, |b, &x| b.iter(|| x * x));
        group.finish();
    }
}
