//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in a container without crates.io access, so the
//! subset of the `rand 0.8` API the repo uses is implemented locally:
//!
//! * [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`] — deterministic
//!   xoshiro256++ seeded through SplitMix64 (the same construction the
//!   xoshiro authors recommend);
//! * [`distributions::Uniform`] / [`distributions::Distribution`] —
//!   half-open uniform ranges for `f32`/`f64`;
//! * [`Rng::gen`] for `f32`/`f64` in `[0, 1)`.
//!
//! The streams differ from upstream `StdRng` (which is ChaCha12); every
//! consumer in this repo only relies on seeds being deterministic and the
//! values being i.i.d. uniform, so that is the contract kept here.

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `seed_from_u64` entry point is used here).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Convenience sampling interface, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its "standard" distribution
    /// (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        // 24 high-quality mantissa bits -> [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the repo's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// Distribution interface, matching `rand::distributions::Distribution`.
    pub trait Distribution<T> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Half-open uniform distribution over `[lo, hi)`.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform<T> {
        lo: T,
        hi: T,
    }

    impl<T: PartialOrd + Copy> Uniform<T> {
        pub fn new(lo: T, hi: T) -> Self {
            assert!(lo < hi, "Uniform::new requires lo < hi");
            Uniform { lo, hi }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.lo + u * (self.hi - self.lo)
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f32 {
            let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
            self.lo + u * (self.hi - self.lo)
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> u64 {
            let span = self.hi - self.lo;
            self.lo + rng.next_u64() % span
        }
    }

    impl Distribution<usize> for Uniform<usize> {
        fn sample<R: RngCore>(&self, rng: &mut R) -> usize {
            let span = (self.hi - self.lo) as u64;
            self.lo + (rng.next_u64() % span) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f32> = (0..16).map(|_| a.gen::<f32>()).collect();
        let vb: Vec<f32> = (0..16).map(|_| b.gen::<f32>()).collect();
        let vc: Vec<f32> = (0..16).map(|_| c.gen::<f32>()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn uniform_respects_bounds_and_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = Uniform::new(1.0f64, 2.0);
        let vals: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        assert!(vals.iter().all(|&v| (1.0..2.0).contains(&v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 1.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_f32_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
