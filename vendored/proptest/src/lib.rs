//! Offline stand-in for the `proptest` crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! subset of proptest the repo's tests use is implemented locally:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(...)]`);
//! * [`Strategy`] for integer/float ranges, 2-tuples, [`Strategy::prop_map`]
//!   and [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from upstream: cases are drawn from a generator seeded by
//! the test name (fully deterministic run to run), there is no shrinking,
//! and failed assertions panic immediately with the offending case visible
//! in the ordinary assert message.

use std::ops::Range;

/// Deterministic case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a stable hash of the test name, so every test gets its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 32 keeps the exact-arithmetic suites
        // fast in debug builds while still sweeping the input space. Like
        // upstream, the `PROPTEST_CASES` environment variable overrides the
        // default (CI pins it so the budget is explicit); tests that pass
        // `with_cases` keep their fixed count.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&c| c > 0)
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A value source: the subset of proptest's `Strategy` the repo uses.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;

    fn sample(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64 + rng.unit_f64() * (self.end - self.start) as f64) as f32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Always-the-same-value strategy (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count specification for [`vec`]: a fixed length or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange { lo: len, hi: len + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    /// Strategy producing `Vec`s of `elem`-generated values.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Reject the current case when the assumption does not hold. Real proptest
/// resamples rejected cases; this stub simply skips to the next case of the
/// surrounding `proptest!` loop, which keeps the semantics (no assertion runs
/// on inputs violating the assumption) without a rejection budget.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            continue;
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The proptest entry-point macro: wraps each `fn name(pat in strategy, …)
/// { body }` item in a deterministic multi-case `#[test]` runner.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                let ($($pat,)+) = ($($crate::Strategy::sample(&($strat), &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::sample(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = Strategy::sample(&(-20i128..20), &mut rng);
            assert!((-20..20).contains(&i));
        }
    }

    #[test]
    fn vec_and_map_compose() {
        let strat = crate::collection::vec((-5i128..5, 1i128..8), 1..6).prop_map(|v| v.len());
        let mut rng = crate::TestRng::deterministic("compose");
        for _ in 0..100 {
            let len = Strategy::sample(&strat, &mut rng);
            assert!((1..6).contains(&len));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        #[test]
        fn macro_runs_cases(a in 0usize..10, b in 0u64..5) {
            prop_assert!(a < 10);
            prop_assert!(b < 5, "b = {}", b);
            prop_assert_eq!(a + 1, 1 + a);
        }
    }
}
