#!/usr/bin/env bash
# Full local gate: everything CI (and the next PR's author) expects to pass.
# Run from the repo root. Builds are offline; the workspace vendors its
# dev-dependency stand-ins under vendored/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --offline --release

echo "== cargo test -q (workspace) =="
cargo test --offline --workspace -q

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
