#!/usr/bin/env bash
# Full local gate: everything CI (and the next PR's author) expects to pass.
# Run from the repo root. Builds are offline; the workspace vendors its
# dev-dependency stand-ins under vendored/.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== no #[ignore]d tests in tier-1 files =="
# The tier-1 gate is `cargo test -q` over crates/, src/ and tests/; an
# #[ignore] there silently removes a test from the gate, so it fails loudly
# here instead. (vendored/ is exempt: it mirrors upstream APIs.)
if grep -rn --include='*.rs' '#\[ignore' crates src tests; then
  echo "error: #[ignore]d tests are not allowed in tier-1 files (crates/, src/, tests/)" >&2
  exit 1
fi

echo "== cargo build --release =="
# --workspace: a bare `cargo build` here only covers the root package, so
# e.g. target/release/repro could go stale and drive old code.
cargo build --offline --release --workspace

echo "== cargo test -q (workspace, native dispatch) =="
cargo test --offline --workspace -q

echo "== cargo test -q (workspace, forced-scalar dispatch) =="
# Second lane with IWINO_FORCE_SCALAR=1: every test must also pass with the
# iwino-simd dispatch pinned to the scalar fallback, proving the scalar
# path stays correct and the SIMD/scalar bit-exactness net is not
# vacuously green on SIMD hosts.
IWINO_FORCE_SCALAR=1 cargo test --offline --workspace -q

echo "== property tests (fixed PROPTEST_CASES budget) =="
# The Γ conformance net honours PROPTEST_CASES (vendored/proptest); pin an
# explicit budget above the 32-case default so the remainder-lane sweep is
# deeper here than in the quick workspace pass, and reproducible.
PROPTEST_CASES=64 cargo test --offline -q --test gamma_conformance

echo "== flight-recorder trace validity (native + forced-scalar dispatch) =="
# Explicit acceptance run of the Chrome Trace gate on both dispatch lanes
# (also part of the workspace passes above; named here so a trace-format
# break is attributed immediately instead of surfacing as a generic test
# failure).
cargo test --offline -q -p iwino-bench --test trace_validity
IWINO_FORCE_SCALAR=1 cargo test --offline -q -p iwino-bench --test trace_validity

echo "== serve concurrency net (native + forced-scalar dispatch) =="
# Explicit acceptance run of the batch-serving net (also part of the
# workspace passes above; named so a serving break is attributed
# immediately): exactly-once / bitwise-serial property tests, skewed-burst
# + oversubscription stress, deadline/admission edges, and the serve-bench
# schema round-trip. Both dispatch lanes must serve bitwise-serial output.
PROPTEST_CASES=64 cargo test --offline -q -p iwino-serve
PROPTEST_CASES=64 IWINO_FORCE_SCALAR=1 cargo test --offline -q -p iwino-serve
cargo test --offline -q -p iwino-bench --test serve_schema

echo "== serve-bench smoke (amortization self-check) =="
# A small open-loop run: repro serve-bench exits nonzero unless plan-cache
# misses equal the bucket count (one filter-bank build per bucket, ever)
# and every admitted request was served.
mkdir -p repro_results
cargo run --offline --release -p iwino-bench --bin repro -- \
  serve-bench --requests 300 --rate 50000 --out repro_results/serve_smoke.json

echo "== perf-regression gate (bench-compare over the committed serve pair) =="
# Diffs the committed serving A/B (coalescing off vs max_batch 16): each
# bucket's served-FLOPs rate must hold within 10% of its baseline. Both
# documents carry dispatch records, so ISA parity is checked for real (no
# --force).
cargo run --offline --release -p iwino-bench --bin repro -- \
  bench-compare BENCH_serve_baseline.json BENCH_serve_after.json --max-regression 10

echo "== perf-regression gate (bench-compare over the committed PR-5 pair) =="
# Diffs the committed stage-bench trajectory: the after-document must hold
# every case within 10% of its baseline. --force because the v1 baseline
# predates the dispatch record (cannot prove ISA parity); exits 1 on a
# regression, which fails this gate.
cargo run --offline --release -p iwino-bench --bin repro -- \
  bench-compare BENCH_pr5_baseline.json BENCH_pr5_after.json --max-regression 10 --force

echo "== perf-regression gate (bench-compare over the committed PR-9 GEMM pair) =="
# Diffs the committed packed-SGEMM A/B (seed broadcast-row GEMM vs the
# Goto-style packed kernel) over the Fig 7-9 im2col shapes: the
# after-document must hold every case within 10% of its baseline. Both
# documents carry dispatch records, so ISA parity is checked for real.
cargo run --offline --release -p iwino-bench --bin repro -- \
  bench-compare BENCH_pr9_baseline.json BENCH_pr9_after.json --max-regression 10

echo "== perf-regression gate (bench-compare over the committed PR-10 indirect pair) =="
# Diffs the committed indirect-convolution A/B (the same small-OW / strided
# frontier shapes run through im2col-gemm-nhwc vs im2col-indirect): the
# indirect arm must hold every case within 10% of the materialising im2col
# baseline — it beats it outright on the strided and large-filter cases.
# Both documents carry dispatch records, so ISA parity is checked for real.
cargo run --offline --release -p iwino-bench --bin repro -- \
  bench-compare BENCH_pr10_baseline.json BENCH_pr10_after.json --max-regression 10

echo "== engine smoke (every registry backend vs the f64 reference) =="
# Drives all of BACKEND_NAMES by name through iwino-engine, checks each
# against direct_conv_f64_ref, and prints plan-cache/arena stats. Exits
# nonzero if any backend fails to plan, run, or agree with the reference.
cargo run --offline --release -p iwino-bench --bin repro -- engine

echo "== cargo clippy (deny warnings) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== static analysis (iwino-analyze) =="
# Five passes: symbolic transform verification over Q, unsafe/SAFETY
# audit, classified atomics lint, lock-order (acyclic nesting graph +
# committed total order), and condvar discipline. Exits nonzero on any
# finding; the JSON report lands next to the repro results. A stale
# snapshot (coefficient bounds or lock order) is a finding too —
# regenerate with `cargo run -p analyzer -- --workspace --fix-snapshot`.
mkdir -p repro_results
cargo run --offline --release -p analyzer -- --workspace --json repro_results/analyzer.json

echo "== concurrency model check (modelcheck, pinned depth + seed) =="
# Deterministic interleaving exploration of the protocol models extracted
# from the serving stack. Exhaustive-up-to-depth over the ticket handoff
# and the coalescer drain loop (>=10k distinct schedules total, every
# assertion holding), one pinned-seed randomized lane, and the seeded
# missed-wakeup bug model, which MUST fail — a passing buggy-notify run
# means the checker lost its teeth.
cargo run --offline --release -p modelcheck --bin mc -- \
  --model all --strategy exhaustive --depth 40 --max-schedules 6000 --min-distinct 5000
cargo run --offline --release -p modelcheck --bin mc -- \
  --model ticket --strategy random --seed 1 --max-schedules 400 --depth 40 --min-distinct 100
cargo run --offline --release -p modelcheck --bin mc -- \
  --model buggy-notify --strategy exhaustive --depth 40 --expect-failure

echo "== cargo fmt --check =="
cargo fmt --check

echo "All checks passed."
